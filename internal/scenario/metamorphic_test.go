package scenario

// Metamorphic determinism gate for the experiment engine: parallel
// sweep output must be indistinguishable — down to the JSON bytes —
// from serial Run output, for every defense preset, at any worker
// count. This is the test-level statement of the invariant that
// parallelism lives strictly above run boundaries.

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"platoonsec/internal/obs"
	"platoonsec/internal/sim"
)

// presetOpts returns one representative experiment per preset in
// presets.go (each Table III mechanism pack plus the full stack),
// paired with an attack the mechanism claims to counter.
func presetOpts(t *testing.T) []Options {
	t.Helper()
	cases := []struct{ mech, attack string }{
		{"keys", "replay"},
		{"rsu", "impersonation"},
		{"control-algorithms", "fake-maneuver"},
		{"hybrid-comms", "jamming"},
		{"onboard", "sensor-spoofing"},
	}
	var out []Options
	for _, c := range cases {
		pack, err := PackForMechanism(c.mech)
		if err != nil {
			t.Fatalf("preset %s: %v", c.mech, err)
		}
		o := DefaultOptions()
		o.Duration = 15 * sim.Second
		o.Vehicles = 6
		o.AttackKey = c.attack
		o.Defense = pack
		// Observability and span tracing ride along so the determinism
		// gate also covers Result.Obs, Result.Spans and Result.Forensics:
		// instrumentation must not perturb any observable.
		o.Observe = true
		o.ObsMinLevel = obs.LevelDebug
		o.Spans = true
		out = append(out, o)
	}
	// The full defense stack against a membership attack rounds out
	// the preset list.
	o := DefaultOptions()
	o.Duration = 15 * sim.Second
	o.Vehicles = 6
	o.AttackKey = "sybil"
	o.WithJoiner = true
	o.Defense = AllDefenses()
	o.Observe = true
	o.ObsMinLevel = obs.LevelDebug
	o.Spans = true
	return append(out, o)
}

func TestEngineMatchesSerialAllPresets(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every preset at three worker counts")
	}
	optsList := presetOpts(t)

	serial := make([]*Result, len(optsList))
	serialJSON := make([][]byte, len(optsList))
	for i, o := range optsList {
		r, err := Run(o)
		if err != nil {
			t.Fatalf("serial run %d (%s): %v", i, o.AttackKey, err)
		}
		serial[i] = r
		serialJSON[i], err = json.Marshal(r)
		if err != nil {
			t.Fatalf("marshal serial %d: %v", i, err)
		}
	}

	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, workers := range counts {
		res, err := Sweep(optsList, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range res {
			if !reflect.DeepEqual(res[i], serial[i]) {
				t.Errorf("workers=%d preset %d (%s): result differs from serial Run",
					workers, i, optsList[i].AttackKey)
			}
			got, err := json.Marshal(res[i])
			if err != nil {
				t.Fatalf("marshal workers=%d preset %d: %v", workers, i, err)
			}
			if !bytes.Equal(got, serialJSON[i]) {
				t.Errorf("workers=%d preset %d (%s): JSON bytes differ from serial",
					workers, i, optsList[i].AttackKey)
			}
		}
	}
}

func TestSweepJSONLStreamIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the preset list twice")
	}
	optsList := presetOpts(t)
	var streams [][]byte
	for _, workers := range []int{1, 4} {
		var buf bytes.Buffer
		rep := SweepReport(context.Background(), optsList, SweepConfig{
			Workers: workers, Results: &buf, DiscardResults: true,
		})
		if rep.Err != nil || rep.SinkErr != nil {
			t.Fatalf("workers=%d: err=%v sinkErr=%v", workers, rep.Err, rep.SinkErr)
		}
		if rep.Results != nil {
			t.Fatalf("workers=%d: results retained despite DiscardResults", workers)
		}
		if rep.Telemetry.Events == 0 {
			t.Errorf("workers=%d: telemetry recorded zero kernel events", workers)
		}
		streams = append(streams, buf.Bytes())
	}
	if !bytes.Equal(streams[0], streams[1]) {
		t.Error("JSONL stream bytes differ between workers=1 and workers=4")
	}
}

// TestChromeTraceIdenticalAcrossWorkerCounts pins the flight-recorder
// invariant from DESIGN.md: because every record timestamp is a copy of
// sim.Time and runs never share a recorder, the exported Chrome-trace
// bytes for each run are identical at any worker count.
func TestChromeTraceIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every preset at three worker counts")
	}
	if raceEnabled {
		t.Skip("byte-identity adds nothing under the race detector; the observed sweep paths are raced by TestEngineMatchesSerialAllPresets")
	}
	base := presetOpts(t)

	traces := func(workers int) [][]byte {
		t.Helper()
		bufs := make([]*bytes.Buffer, len(base))
		optsList := make([]Options, len(base))
		for i, o := range base {
			bufs[i] = &bytes.Buffer{}
			o.ChromeTrace = bufs[i]
			optsList[i] = o
		}
		if _, err := Sweep(optsList, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		out := make([][]byte, len(bufs))
		for i, b := range bufs {
			out[i] = b.Bytes()
		}
		return out
	}

	want := traces(1)
	for i, tr := range want {
		if len(tr) == 0 {
			t.Fatalf("preset %d (%s): empty Chrome trace", i, base[i].AttackKey)
		}
		if !json.Valid(tr) {
			t.Fatalf("preset %d (%s): Chrome trace is not valid JSON", i, base[i].AttackKey)
		}
	}
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		got := traces(workers)
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Errorf("workers=%d preset %d (%s): Chrome trace bytes differ from workers=1",
					workers, i, base[i].AttackKey)
			}
		}
	}
}

// TestObserveDoesNotPerturbRun pins instrumentation transparency: a run
// with the flight recorder AND span tracing attached (at the most
// verbose admission level) must produce exactly the same Result, minus
// the Obs snapshot and span accounting, as the same run without them.
// Instrumentation draws no randomness and schedules no events, so this
// must hold for every preset.
func TestObserveDoesNotPerturbRun(t *testing.T) {
	if raceEnabled {
		t.Skip("serial field-for-field comparison adds nothing under the race detector; covered by the non-race test job")
	}
	for i, o := range presetOpts(t) {
		observed, err := Run(o)
		if err != nil {
			t.Fatalf("preset %d (%s) observed: %v", i, o.AttackKey, err)
		}
		if observed.Obs == nil {
			t.Fatalf("preset %d (%s): Observe set but Result.Obs is nil", i, o.AttackKey)
		}
		if observed.Spans == nil || observed.Forensics == nil {
			t.Fatalf("preset %d (%s): Spans set but Result.Spans/Forensics is nil", i, o.AttackKey)
		}
		plain := o
		plain.Observe = false
		plain.Spans = false
		bare, err := Run(plain)
		if err != nil {
			t.Fatalf("preset %d (%s) bare: %v", i, o.AttackKey, err)
		}
		if bare.Obs != nil {
			t.Fatalf("preset %d (%s): Observe unset but Result.Obs is non-nil", i, o.AttackKey)
		}
		if bare.Spans != nil || bare.Forensics != nil {
			t.Fatalf("preset %d (%s): Spans unset but Result.Spans/Forensics is non-nil", i, o.AttackKey)
		}
		stripped := *observed
		stripped.Obs = nil
		stripped.Spans = nil
		stripped.Forensics = nil
		if !reflect.DeepEqual(&stripped, bare) {
			t.Errorf("preset %d (%s): enabling instrumentation changed the run outcome",
				i, o.AttackKey)
		}
	}
}

// TestForensicsJSONIdenticalAcrossWorkerCounts pins the new causal
// layer's determinism independently of the full-Result check: the
// forensics report — chain renderings included — must serialize to
// byte-identical JSON whether the run executed serially or inside a
// parallel sweep at any worker count.
func TestForensicsJSONIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every preset at three worker counts")
	}
	optsList := presetOpts(t)
	want := make([][]byte, len(optsList))
	for i, o := range optsList {
		r, err := Run(o)
		if err != nil {
			t.Fatalf("serial run %d (%s): %v", i, o.AttackKey, err)
		}
		if r.Forensics == nil || len(r.Forensics.Effects) == 0 {
			t.Fatalf("preset %d (%s): forensics report empty", i, o.AttackKey)
		}
		want[i], err = json.Marshal(r.Forensics)
		if err != nil {
			t.Fatalf("marshal serial %d: %v", i, err)
		}
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		res, err := Sweep(optsList, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range res {
			got, err := json.Marshal(res[i].Forensics)
			if err != nil {
				t.Fatalf("marshal workers=%d preset %d: %v", workers, i, err)
			}
			if !bytes.Equal(got, want[i]) {
				t.Errorf("workers=%d preset %d (%s): forensics JSON differs from serial",
					workers, i, optsList[i].AttackKey)
			}
		}
	}
}

func TestSweepReturnsLowestIndexedError(t *testing.T) {
	// Two different failures at indices 1 and 3; the reported error
	// must always be index 1's, no matter how the scheduler interleaves
	// the runs.
	good := DefaultOptions()
	good.Duration = 5 * sim.Second
	good.Vehicles = 4
	badVehicles := good
	badVehicles.Vehicles = 0
	badDuration := good
	badDuration.Duration = 0
	list := []Options{good, badVehicles, good, badDuration}

	for iter := 0; iter < 3; iter++ {
		_, err := Sweep(list, 4)
		if err == nil {
			t.Fatal("sweep with failing runs returned nil error")
		}
		if !strings.Contains(err.Error(), "sweep run 1") {
			t.Fatalf("iter %d: error %q does not name run 1 (lowest failing index)", iter, err)
		}
	}
}
