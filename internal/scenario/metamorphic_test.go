package scenario

// Metamorphic determinism gate for the experiment engine: parallel
// sweep output must be indistinguishable — down to the JSON bytes —
// from serial Run output, for every defense preset, at any worker
// count. This is the test-level statement of the invariant that
// parallelism lives strictly above run boundaries.

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"platoonsec/internal/sim"
)

// presetOpts returns one representative experiment per preset in
// presets.go (each Table III mechanism pack plus the full stack),
// paired with an attack the mechanism claims to counter.
func presetOpts(t *testing.T) []Options {
	t.Helper()
	cases := []struct{ mech, attack string }{
		{"keys", "replay"},
		{"rsu", "impersonation"},
		{"control-algorithms", "fake-maneuver"},
		{"hybrid-comms", "jamming"},
		{"onboard", "sensor-spoofing"},
	}
	var out []Options
	for _, c := range cases {
		pack, err := PackForMechanism(c.mech)
		if err != nil {
			t.Fatalf("preset %s: %v", c.mech, err)
		}
		o := DefaultOptions()
		o.Duration = 15 * sim.Second
		o.Vehicles = 6
		o.AttackKey = c.attack
		o.Defense = pack
		out = append(out, o)
	}
	// The full defense stack against a membership attack rounds out
	// the preset list.
	o := DefaultOptions()
	o.Duration = 15 * sim.Second
	o.Vehicles = 6
	o.AttackKey = "sybil"
	o.WithJoiner = true
	o.Defense = AllDefenses()
	return append(out, o)
}

func TestEngineMatchesSerialAllPresets(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every preset at three worker counts")
	}
	optsList := presetOpts(t)

	serial := make([]*Result, len(optsList))
	serialJSON := make([][]byte, len(optsList))
	for i, o := range optsList {
		r, err := Run(o)
		if err != nil {
			t.Fatalf("serial run %d (%s): %v", i, o.AttackKey, err)
		}
		serial[i] = r
		serialJSON[i], err = json.Marshal(r)
		if err != nil {
			t.Fatalf("marshal serial %d: %v", i, err)
		}
	}

	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, workers := range counts {
		res, err := Sweep(optsList, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range res {
			if !reflect.DeepEqual(res[i], serial[i]) {
				t.Errorf("workers=%d preset %d (%s): result differs from serial Run",
					workers, i, optsList[i].AttackKey)
			}
			got, err := json.Marshal(res[i])
			if err != nil {
				t.Fatalf("marshal workers=%d preset %d: %v", workers, i, err)
			}
			if !bytes.Equal(got, serialJSON[i]) {
				t.Errorf("workers=%d preset %d (%s): JSON bytes differ from serial",
					workers, i, optsList[i].AttackKey)
			}
		}
	}
}

func TestSweepJSONLStreamIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the preset list twice")
	}
	optsList := presetOpts(t)
	var streams [][]byte
	for _, workers := range []int{1, 4} {
		var buf bytes.Buffer
		rep := SweepReport(context.Background(), optsList, SweepConfig{
			Workers: workers, Results: &buf, DiscardResults: true,
		})
		if rep.Err != nil || rep.SinkErr != nil {
			t.Fatalf("workers=%d: err=%v sinkErr=%v", workers, rep.Err, rep.SinkErr)
		}
		if rep.Results != nil {
			t.Fatalf("workers=%d: results retained despite DiscardResults", workers)
		}
		if rep.Telemetry.Events == 0 {
			t.Errorf("workers=%d: telemetry recorded zero kernel events", workers)
		}
		streams = append(streams, buf.Bytes())
	}
	if !bytes.Equal(streams[0], streams[1]) {
		t.Error("JSONL stream bytes differ between workers=1 and workers=4")
	}
}

func TestSweepReturnsLowestIndexedError(t *testing.T) {
	// Two different failures at indices 1 and 3; the reported error
	// must always be index 1's, no matter how the scheduler interleaves
	// the runs.
	good := DefaultOptions()
	good.Duration = 5 * sim.Second
	good.Vehicles = 4
	badVehicles := good
	badVehicles.Vehicles = 0
	badDuration := good
	badDuration.Duration = 0
	list := []Options{good, badVehicles, good, badDuration}

	for iter := 0; iter < 3; iter++ {
		_, err := Sweep(list, 4)
		if err == nil {
			t.Fatal("sweep with failing runs returned nil error")
		}
		if !strings.Contains(err.Error(), "sweep run 1") {
			t.Fatalf("iter %d: error %q does not name run 1 (lowest failing index)", iter, err)
		}
	}
}
