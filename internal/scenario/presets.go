package scenario

import "fmt"

// PackForMechanism maps a Table III mechanism key onto the defense
// configuration that implements it. This is the binding the E3
// attack × defense matrix sweeps.
func PackForMechanism(key string) (DefensePack, error) {
	switch key {
	case "keys":
		// §VI-A1: signatures + timestamps + session-key encryption.
		return DefensePack{PKI: true, Encrypt: true}, nil
	case "rsu":
		// §VI-A2: RSU-mediated keys plus TA misbehaviour reporting and
		// revocation (trust feeds the reports).
		return DefensePack{PKI: true, Encrypt: true, VPDADA: true, Trust: true}, nil
	case "control-algorithms":
		// §VI-A3: plausibility detection, trust, DoS throttling,
		// join-presence gating and bounded maneuver gaps — no
		// cryptography.
		return DefensePack{VPDADA: true, Trust: true, RateLimit: true,
			GapTimeout: true, JoinGate: true}, nil
	case "hybrid-comms":
		// §VI-A4: SP-VLC optical side channel + dual-channel maneuvers.
		return DefensePack{Hybrid: true}, nil
	case "onboard":
		// §VI-A5: sensor fusion, redundant ranging, and hardened
		// firmware + CAN firewall against the malware infection vector.
		return DefensePack{Fusion: true, HardenedOnboard: true}, nil
	default:
		return DefensePack{}, fmt.Errorf("scenario: unknown mechanism %q", key)
	}
}

// AllDefenses returns the full stack (a hardened platoon).
func AllDefenses() DefensePack {
	return DefensePack{
		PKI: true, Encrypt: true, RateLimit: true, VPDADA: true,
		Trust: true, Hybrid: true, Fusion: true, GapTimeout: true,
		JoinGate: true, Convoy: true, HardenedOnboard: true,
	}
}
