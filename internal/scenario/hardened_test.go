package scenario

import (
	"testing"

	"platoonsec/internal/sim"
)

// TestHardenedPlatoonSurvivesEverything runs every Table II attack
// against the full defense stack: the platoon must keep its integrity
// and availability, and privacy must hold. This is the repository's
// end-to-end claim: the surveyed mechanisms, composed, cover the
// surveyed attacks.
func TestHardenedPlatoonSurvivesEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("9 full scenario runs")
	}
	for _, attackKey := range []string{
		"replay", "sybil", "fake-maneuver", "jamming", "eavesdropping",
		"dos", "impersonation", "sensor-spoofing", "malware",
	} {
		attackKey := attackKey
		t.Run(attackKey, func(t *testing.T) {
			o := baseOpts()
			o.AttackKey = attackKey
			o.Defense = AllDefenses()
			if attackKey == "dos" || attackKey == "sybil" {
				o.WithJoiner = true
				o.JoinerAt = o.AttackStart + 15*sim.Second
				o.Duration = 60 * sim.Second
			}
			r, err := Run(o)
			if err != nil {
				t.Fatal(err)
			}
			if r.Collisions != 0 {
				t.Errorf("collisions = %d", r.Collisions)
			}
			if r.MaxSpacingErr > 4 {
				t.Errorf("max spacing error = %.2f m", r.MaxSpacingErr)
			}
			if r.DisbandedFrac > 0.05 {
				t.Errorf("disbanded = %.2f", r.DisbandedFrac)
			}
			if r.GhostMembers != 0 {
				t.Errorf("ghosts = %d", r.GhostMembers)
			}
			if r.VictimsEjected != 0 {
				t.Errorf("ejected = %d", r.VictimsEjected)
			}
			// Privacy: the platoon's own traffic is sealed. Attacks
			// that broadcast plaintext forgeries (dos, sybil,
			// fake-maneuver, impersonation) inflate the observer's
			// decode count with the attacker's *own* frames — that is
			// not platoon leakage, so the yield assertion applies only
			// to the quiet attacks.
			switch attackKey {
			case "jamming", "eavesdropping", "sensor-spoofing", "malware", "replay":
				if r.EavesdropYield > 0.05 {
					t.Errorf("eavesdrop yield = %.2f", r.EavesdropYield)
				}
				if r.EavesdropTracks != 0 {
					t.Errorf("observer built %d tracks through encryption", r.EavesdropTracks)
				}
			}
		})
	}
}
