// Package scenario assembles full experiments: a highway platoon over a
// realistic fading channel, an attack from the canonical suite injected
// mid-run, a configurable stack of defenses, and a metrics collector
// that reduces the run to the observables the paper's tables talk
// about. Every experiment is Run(Options) → Result, deterministic in
// (Options, Seed).
package scenario

import (
	"io"

	"platoonsec/internal/obs"
	"platoonsec/internal/phy"
	"platoonsec/internal/platoon"
	"platoonsec/internal/sim"
	worldpkg "platoonsec/internal/world"
)

// DefensePack selects which Table III mechanism families are active.
type DefensePack struct {
	// PKI signs envelopes and verifies with a replay guard (§VI-A1).
	PKI bool
	// Encrypt seals envelopes under the platoon session key (§VI-A1,
	// confidentiality arm).
	Encrypt bool
	// RateLimit installs the DoS token buckets.
	RateLimit bool
	// VPDADA installs the plausibility detector on every vehicle
	// (§VI-A3).
	VPDADA bool
	// Trust installs the REPLACE-style trust manager, fed by VPDADA
	// detections, reporting blacklists to the TA (§VI-A2/§VI-A3).
	Trust bool
	// Hybrid runs the SP-VLC optical chain and dual-channel maneuver
	// confirmation (§VI-A4).
	Hybrid bool
	// CV2X runs the alternative second channel §VI-A4 also names: a
	// 3GPP C-V2X sidelink carrying leader state in a different band.
	CV2X bool
	// Fusion runs GPS/odometry sensor fusion on every member and a
	// redundant ranging sensor (§VI-A5).
	Fusion bool
	// GapTimeout bounds maneuver gaps (protocol hardening against fake
	// entrance).
	GapTimeout bool
	// JoinGate requires join requesters to have been observed beaconing
	// nearby before the leader considers them (§VI-A3 DoS defense).
	JoinGate bool
	// Convoy requires joiners to prove physical road presence via
	// suspension-correlation proofs (Han et al. [4], the paper
	// conclusion's "witness systems and sensors"). Prevents Sybil
	// ghost admission without cryptography.
	Convoy bool
	// HardenedOnboard models §VI-A5 firmware hardening: the malware
	// infection vector (multimedia file / OBD / compromised ECU) is
	// blocked, so the insider-FDI payload never activates and its CAN
	// injections die at the firewall.
	HardenedOnboard bool
}

// Any reports whether any defense is enabled.
func (d DefensePack) Any() bool {
	return d.PKI || d.Encrypt || d.RateLimit || d.VPDADA || d.Trust || d.Hybrid ||
		d.CV2X || d.Fusion || d.GapTimeout || d.JoinGate || d.Convoy || d.HardenedOnboard
}

// Options configures one experiment.
type Options struct {
	// Seed drives every random stream.
	Seed int64
	// Duration is the simulated time span.
	Duration sim.Time
	// Vehicles is the platoon size (leader + members). Minimum 2.
	Vehicles int
	// Cfg is the platoon protocol configuration.
	Cfg platoon.Config
	// ChannelEnv overrides the radio environment (nil = realistic
	// default with fading and shadowing).
	ChannelEnv *phy.Environment
	// SpeedProfile scripts the leader (nil = default profile with a
	// speed step at one-third of the run, which gives replay attackers
	// material and exercises string stability).
	SpeedProfile func(now sim.Time) float64
	// Defense selects active mechanisms.
	Defense DefensePack
	// AttackKey selects the attack (taxonomy key; "" = baseline run).
	AttackKey string
	// AttackStart is when the attack arms.
	AttackStart sim.Time
	// WithJoiner adds a genuine certified joiner that requests
	// admission at JoinerAt (measures availability).
	WithJoiner bool
	// JoinerAt is the joiner's first request time.
	JoinerAt sim.Time
	// JammerPowerDBm overrides the jamming attack power (0 = default
	// 40 dBm).
	JammerPowerDBm float64
	// SybilGhosts overrides the ghost count (0 = default 5).
	SybilGhosts int
	// TraceCSV, when non-nil, receives a per-100 ms CSV time series
	// (time, leader speed, worst/mean spacing error, disbanded
	// fraction) for offline plotting.
	TraceCSV io.Writer
	// AutoRejoin enables the §V-A3 reconnection behaviour: members
	// thrown out of the platoon request readmission. Pair with
	// AttackOneShot to measure reform time.
	AutoRejoin bool
	// AttackOneShot limits injection attacks to a single forged
	// message (fake-maneuver only), so recovery is observable.
	AttackOneShot bool
	// FakeManeuverVariant selects the §V-A3 forgery for the
	// fake-maneuver attack: "split" (default), "entrance", "leave",
	// "dissolve".
	FakeManeuverVariant string
	// EventsJSONL, when non-nil, receives newline-delimited JSON
	// events: defense detections, role changes, blacklistings and
	// revocations, for offline timeline analysis.
	EventsJSONL io.Writer
	// Observe attaches a flight recorder to every layer (kernel, phy,
	// mac, attack, defense, scenario) and lands its metric snapshot in
	// Result.Obs. Recording draws no randomness and schedules no
	// events, so enabling it does not change any other observable.
	Observe bool
	// ObsCapacity overrides the flight-recorder ring size
	// (0 = obs.DefaultCapacity).
	ObsCapacity int
	// ObsMinLevel is the severity admitted on every layer; the zero
	// value is obs.LevelInfo.
	ObsMinLevel obs.Level
	// ChromeTrace, when non-nil, receives the run's retained records as
	// a Chrome trace-event / Perfetto JSON document. Implies Observe.
	// With Spans also set, the document gains flow events linking each
	// causal chain across layer rows.
	ChromeTrace io.Writer
	// Timeline enables the per-epoch metrics timeline on world runs
	// (see worldpkg.Options.Timeline); it has no effect on
	// single-platoon runs. Like Observe and Spans, the recorder
	// cannot change any other observable. TimelineCapacity bounds the
	// sample ring (0 = timeline.DefaultCapacity).
	Timeline         bool
	TimelineCapacity int
	// Spans enables causal provenance tracing: every frame's journey
	// (inject/send → phy fade → mac delivery or loss → controller,
	// detector and roster effects) lands in a bounded span store, and
	// Result gains Spans accounting plus a Forensics attribution
	// report. Like Observe, tracing draws no randomness and schedules
	// no events, so it cannot change any other observable.
	Spans bool
	// SpanCapacity overrides the span store bound
	// (0 = span.DefaultCapacity).
	SpanCapacity int
	// World, when non-nil, switches the run to the sharded
	// multi-platoon highway world (RunWorld): a ring of platoons with
	// a full lifecycle layer instead of one platoon under one attack.
	// Seed, Duration, AttackKey, AttackStart, Spans, SpanCapacity,
	// EventsJSONL, Timeline and TimelineCapacity
	// are inherited from this Options unless the World
	// options set them explicitly; single-platoon knobs (defenses,
	// attack variants, Observe) do not apply at world scale.
	World *worldpkg.Options
}

// DefaultOptions returns the standard E2 experiment shell: an 8-vehicle
// platoon, 60 simulated seconds, attack armed at t=10 s.
func DefaultOptions() Options {
	return Options{
		Seed:        1,
		Duration:    60 * sim.Second,
		Vehicles:    8,
		Cfg:         platoon.DefaultConfig(),
		AttackStart: 10 * sim.Second,
		WithJoiner:  false,
		JoinerAt:    15 * sim.Second,
	}
}

// defaultProfile steps the leader's speed at one-third of the run.
func defaultProfile(duration sim.Time, cruise float64) func(sim.Time) float64 {
	step := duration / 3
	return func(now sim.Time) float64 {
		if now > step {
			return cruise + 3
		}
		return cruise
	}
}
