package scenario

import (
	"bytes"
	"testing"

	"platoonsec/internal/sim"
	worldpkg "platoonsec/internal/world"
)

// TestRunWorldInheritsOptions checks the scenario-level knobs flow
// into the world run when the world options leave them unset.
func TestRunWorldInheritsOptions(t *testing.T) {
	opts := DefaultOptions()
	opts.Duration = 30 * sim.Second
	opts.AttackKey = "jamming"
	opts.Spans = true
	opts.Timeline = true
	var events bytes.Buffer
	opts.EventsJSONL = &events
	wo := worldpkg.DefaultOptions()
	wo.Duration = 0 // inherit
	wo.AttackKey = ""
	wo.AttackStart = 0
	wo.Platoons = 12
	wo.VehiclesPerPlatoon = 5
	wo.FreeAgents = 8
	wo.Shards = 2
	opts.World = &wo

	r, err := RunWorld(opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.AttackKey != "jamming" {
		t.Errorf("attack key not inherited: %q", r.AttackKey)
	}
	if r.Epochs != uint64(opts.Duration/wo.Epoch) {
		t.Errorf("duration not inherited: %d epochs", r.Epochs)
	}
	if r.Spans == nil || r.Forensics == nil {
		t.Error("spans not inherited")
	}
	if events.Len() == 0 {
		t.Error("event stream not inherited")
	}
	if r.Jammed == 0 {
		t.Error("inherited jamming attack never fired")
	}
	if r.Timeline == nil || r.Timeline.Recorded != r.Epochs {
		t.Errorf("timeline not inherited: %+v", r.Timeline)
	}
}

// TestRunWorldRequiresWorld pins the nil guard.
func TestRunWorldRequiresWorld(t *testing.T) {
	if _, err := RunWorld(DefaultOptions()); err == nil {
		t.Fatal("RunWorld accepted options without a world")
	}
}
