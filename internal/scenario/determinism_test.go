package scenario

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"testing"

	"platoonsec/internal/sim"
)

// runDigest executes one experiment and reduces everything observable —
// the CSV trace, the JSONL event timeline, and the collected Result —
// to a single SHA-256.
func runDigest(t *testing.T, opts Options) [32]byte {
	t.Helper()
	var csv, events bytes.Buffer
	opts.TraceCSV = &csv
	opts.EventsJSONL = &events
	res, err := Run(opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	h := sha256.New()
	h.Write(csv.Bytes())
	h.Write(events.Bytes())
	// fmt's %+v prints map keys in sorted order, so this rendering is
	// itself deterministic given identical contents.
	fmt.Fprintf(h, "%+v", res)
	var sum [32]byte
	copy(sum[:], h.Sum(nil))
	return sum
}

// TestSeedStability is the bit-for-bit reproducibility gate: the same
// options and seed must yield byte-identical traces, timelines, and
// results on repeated runs. This is the invariant the platoonvet suite
// (internal/analysis) exists to protect; if this test fails, look for
// wall-clock reads, global rand draws, unsorted map iteration, or
// goroutines introduced into sim-critical code.
func TestSeedStability(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full scenarios; skipped in -short mode")
	}
	cases := []struct {
		name string
		opts func() Options
	}{
		{"baseline", func() Options {
			o := DefaultOptions()
			o.Duration = 20 * sim.Second
			return o
		}},
		{"sybil-vs-full-stack", func() Options {
			o := DefaultOptions()
			o.Duration = 20 * sim.Second
			o.AttackKey = "sybil"
			o.Defense = AllDefenses()
			o.WithJoiner = true
			return o
		}},
		{"replay-vs-keys", func() Options {
			o := DefaultOptions()
			o.Duration = 20 * sim.Second
			o.AttackKey = "replay"
			o.Defense = DefensePack{PKI: true, Encrypt: true}
			return o
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			first := runDigest(t, tc.opts())
			for rerun := 0; rerun < 2; rerun++ {
				if again := runDigest(t, tc.opts()); again != first {
					t.Fatalf("rerun %d produced a different digest: %x != %x (determinism broken)",
						rerun+1, again, first)
				}
			}
		})
	}
}

// TestSeedSensitivity is the companion check: different seeds must
// actually change the run (otherwise the digest test proves nothing
// about the streams being wired through).
func TestSeedSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full scenarios; skipped in -short mode")
	}
	base := func() Options {
		o := DefaultOptions()
		o.Duration = 20 * sim.Second
		return o
	}
	a := base()
	b := base()
	b.Seed = 2
	if runDigest(t, a) == runDigest(t, b) {
		t.Fatal("seeds 1 and 2 produced identical digests; randomness is not flowing from the kernel seed")
	}
}
