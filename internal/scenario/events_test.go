package scenario

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"platoonsec/internal/obs"
	"platoonsec/internal/sim"
)

func TestEventsJSONLTimeline(t *testing.T) {
	var buf bytes.Buffer
	o := baseOpts()
	o.Duration = 50 * sim.Second
	o.AttackKey = "sybil"
	pack, err := PackForMechanism("control-algorithms")
	if err != nil {
		t.Fatal(err)
	}
	o.Defense = pack
	o.EventsJSONL = &buf
	if _, err := Run(o); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 5 {
		t.Fatalf("timeline has only %d events", len(lines))
	}
	kinds := map[string]int{}
	prev := int64(-1)
	for _, line := range lines {
		// The timeline rows ARE obs.Record values; decode through the
		// record's wire schema (layer renders as its string name).
		var ev struct {
			AtNS  int64  `json:"at_ns"`
			Layer string `json:"layer"`
			Kind  string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		if ev.AtNS < prev {
			t.Fatalf("events out of order at %v", ev.AtNS)
		}
		prev = ev.AtNS
		if ev.Layer != obs.LayerScenario.String() {
			t.Fatalf("timeline event on layer %v: %q", ev.Layer, line)
		}
		kinds[ev.Kind]++
	}
	if kinds["scenario.detection"] == 0 {
		t.Fatalf("no detection events: %v", kinds)
	}
	if kinds["scenario.blacklist"] == 0 {
		t.Fatalf("no blacklist events: %v", kinds)
	}
}

func TestEventsRoleChanges(t *testing.T) {
	var buf bytes.Buffer
	o := baseOpts()
	o.Duration = 30 * sim.Second
	o.AttackKey = "fake-maneuver"
	o.EventsJSONL = &buf
	if _, err := Run(o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "role-change") {
		t.Fatal("forged split produced no role-change events")
	}
}
