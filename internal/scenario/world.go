package scenario

import (
	"fmt"

	worldpkg "platoonsec/internal/world"
)

// RunWorld executes the sharded multi-platoon highway world described
// by opts.World, inheriting the shared experiment knobs (Seed,
// Duration, AttackKey, AttackStart, Spans, SpanCapacity, EventsJSONL,
// Timeline, TimelineCapacity)
// from the scenario Options wherever the world options leave them
// zero. Like Run, the result is deterministic in the options alone —
// and additionally invariant in the world's Shards and Workers.
func RunWorld(opts Options) (*worldpkg.Result, error) {
	if opts.World == nil {
		return nil, fmt.Errorf("scenario: RunWorld needs Options.World")
	}
	w := *opts.World
	if w.Seed == 0 {
		w.Seed = opts.Seed
	}
	if w.Duration == 0 {
		w.Duration = opts.Duration
	}
	if w.AttackKey == "" {
		w.AttackKey = opts.AttackKey
	}
	if w.AttackStart == 0 {
		w.AttackStart = opts.AttackStart
	}
	if !w.Spans {
		w.Spans = opts.Spans
	}
	if w.SpanCapacity == 0 {
		w.SpanCapacity = opts.SpanCapacity
	}
	if w.EventsJSONL == nil {
		w.EventsJSONL = opts.EventsJSONL
	}
	if !w.Timeline {
		w.Timeline = opts.Timeline
	}
	if w.TimelineCapacity == 0 {
		w.TimelineCapacity = opts.TimelineCapacity
	}
	return worldpkg.Run(w)
}
