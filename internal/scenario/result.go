package scenario

import (
	"fmt"
	"sort"
	"strings"

	"platoonsec/internal/obs"
	"platoonsec/internal/obs/span"
)

// Result is the reduced outcome of one experiment run. Fields map onto
// the four security properties of Table II:
//
//	authenticity    → GhostMembers
//	integrity       → MaxSpacingErr, MeanSpacingErr, Collisions,
//	                  VictimsEjected, PhantomGapMetres
//	availability    → DisbandedFrac, PDR, JoinerAdmitted, JoinsDenied
//	confidentiality → EavesdropYield, EavesdropTracks
type Result struct {
	AttackKey string
	Defense   DefensePack

	// Integrity observables.
	MaxSpacingErr  float64
	MeanSpacingErr float64
	Collisions     int
	VictimsEjected int
	PhantomGap     float64 // largest intra-platoon gap at end, metres
	// ReformSeconds is how long after the attack start the platoon
	// took to regain its full roster (auto-rejoin scenarios). 0 = never
	// damaged; negative = damaged and never reformed.
	ReformSeconds float64

	// Availability observables.
	DisbandedFrac float64
	// PDR is the delivery ratio conditional on transmission; under
	// carrier-sense-starving jamming look at MACStuckDrops instead,
	// because frames die before they are ever sent.
	PDR            float64
	BusyRatio      float64
	MACStuckDrops  uint64
	JoinerAdmitted bool
	JoinsDenied    uint64

	// Authenticity observables.
	GhostMembers int

	// Confidentiality observables.
	EavesdropYield  float64
	EavesdropTracks int

	// Efficiency observables.
	FuelLitres   float64
	DistanceKm   float64
	LitresPer100 float64

	// Defense observables.
	Detections         map[string]uint64
	DetectionPrecision float64
	DetectionCoverage  float64
	VerifyDrops        uint64
	DecryptFailures    uint64
	FilterDrops        map[string]uint64
	Blacklisted        []uint32
	Revoked            []uint32

	// Attack bookkeeping.
	AttackerFrames uint64

	// Run bookkeeping. EventsFired is how many kernel events the run
	// executed; the engine's telemetry divides it by wall time for
	// events/sec. Deterministic for a given Options, so it is safe to
	// include in digest and deep-equality checks.
	EventsFired uint64

	// Obs is the observability snapshot (nil unless Options.Observe):
	// flight-recorder admission stats plus every non-zero counter,
	// gauge and histogram. Deterministic in (Options, Seed), like every
	// other field.
	Obs *obs.Snapshot

	// Spans is the span store's admission accounting (nil unless
	// Options.Spans).
	Spans *span.Stats
	// Forensics is the causal attribution report — per effect kind, how
	// many occurrences trace back to an attack-origin span, with top-k
	// rendered chains (nil unless Options.Spans).
	Forensics *span.Forensics
}

// String renders a compact single-run report.
func (r *Result) String() string {
	var b strings.Builder
	name := r.AttackKey
	if name == "" {
		name = "baseline"
	}
	fmt.Fprintf(&b, "attack=%s defense=%s\n", name, r.Defense.label())
	fmt.Fprintf(&b, "  integrity:       maxSpacingErr=%.2fm meanSpacingErr=%.2fm collisions=%d ejected=%d phantomGap=%.1fm\n",
		r.MaxSpacingErr, r.MeanSpacingErr, r.Collisions, r.VictimsEjected, r.PhantomGap)
	fmt.Fprintf(&b, "  availability:    disbanded=%.0f%% PDR=%.3f busy=%.3f joinerAdmitted=%v joinsDenied=%d\n",
		r.DisbandedFrac*100, r.PDR, r.BusyRatio, r.JoinerAdmitted, r.JoinsDenied)
	fmt.Fprintf(&b, "  authenticity:    ghostMembers=%d\n", r.GhostMembers)
	fmt.Fprintf(&b, "  confidentiality: eavesdropYield=%.2f tracks=%d\n", r.EavesdropYield, r.EavesdropTracks)
	fmt.Fprintf(&b, "  efficiency:      fuel=%.2fL dist=%.2fkm (%.1f L/100km per vehicle)\n",
		r.FuelLitres, r.DistanceKm, r.LitresPer100)
	if len(r.Detections) > 0 || r.VerifyDrops > 0 {
		fmt.Fprintf(&b, "  defense:         verifyDrops=%d detections=%s precision=%.2f coverage=%.2f blacklisted=%v\n",
			r.VerifyDrops, renderCounts(r.Detections), r.DetectionPrecision, r.DetectionCoverage, r.Blacklisted)
	}
	return b.String()
}

func (d DefensePack) label() string {
	if !d.Any() {
		return "none"
	}
	var parts []string
	add := func(on bool, s string) {
		if on {
			parts = append(parts, s)
		}
	}
	add(d.PKI, "pki")
	add(d.Encrypt, "encrypt")
	add(d.RateLimit, "ratelimit")
	add(d.VPDADA, "vpd-ada")
	add(d.Trust, "trust")
	add(d.Hybrid, "sp-vlc")
	add(d.CV2X, "cv2x")
	add(d.Fusion, "fusion")
	add(d.GapTimeout, "gap-timeout")
	add(d.JoinGate, "join-gate")
	add(d.Convoy, "convoy")
	add(d.HardenedOnboard, "hardened")
	return strings.Join(parts, "+")
}

func renderCounts(m map[string]uint64) string {
	if len(m) == 0 {
		return "{}"
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s:%d", k, m[k]))
	}
	return "{" + strings.Join(parts, " ") + "}"
}
