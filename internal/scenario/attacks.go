package scenario

import (
	"fmt"

	"platoonsec/internal/attack"
	"platoonsec/internal/mac"
	"platoonsec/internal/metrics"
	"platoonsec/internal/platoon"
	"platoonsec/internal/sim"
)

// armAttack constructs the attack selected by Options.AttackKey and
// schedules it at AttackStart. The eavesdropping row needs no arming
// here: the always-on confidentiality observer is the attack.
func (w *world) armAttack(cfg platoon.Config) error {
	start := w.opts.AttackStart
	leaderVeh := w.vehs[0]
	// Attacker drives on the shoulder alongside the platoon.
	attackerPos := func() float64 { return leaderVeh.State().Position - 60 }

	newRadio := func() *attack.Radio {
		w.radio = attack.NewRadio(w.k, w.bus, attackerNodeID, attackerPos, 23)
		w.radio.SetRecorder(w.recorder())
		w.radio.SetSpans(w.spans)
		return w.radio
	}
	armAt := func(a attack.Attack) {
		w.atk = a
		w.k.At(start, "attack.arm", func() {
			//platoonvet:alloc-ok Start runs once, when the attack arms
			if err := a.Start(); err != nil {
				//platoonvet:alloc-ok the arm closure fires once; the Sprintf is on its panic path
				panic(fmt.Sprintf("scenario: arming %s: %v", a.Name(), err))
			}
			w.setAttackRoot()
		})
	}

	switch w.opts.AttackKey {
	case "replay":
		// Replayed frames claim the original (honest) senders, so the
		// precision target set is the whole genuine platoon.
		ids := make([]uint32, w.opts.Vehicles)
		for i := range ids {
			ids[i] = uint32(i + 1)
		}
		w.eval = metrics.NewDetectionEval(ids...)
		rp := attack.NewReplay(w.k, newRadio())
		rp.RecordFor = 8 * sim.Second
		rp.ReplayPeriod = 30 * sim.Millisecond
		w.atk = rp
		// The replay radio records from t=0; arm via its own schedule.
		w.k.At(0, "attack.arm", func() {
			if err := rp.Start(); err != nil {
				//platoonvet:alloc-ok the arm closure fires once; the Sprintf is on its panic path
				panic(fmt.Sprintf("scenario: arming replay: %v", err))
			}
			w.setAttackRoot()
		})

	case "sybil":
		n := w.opts.SybilGhosts
		if n <= 0 {
			n = 5
		}
		ghosts := make([]uint32, n)
		for i := range ghosts {
			ghosts[i] = ghostIDBase + uint32(i)
		}
		w.eval = metrics.NewDetectionEval(ghosts...)
		sy := attack.NewSybil(w.k, newRadio(), cfg.PlatoonID, ghostIDBase, n)
		armAt(sy)

	case "fake-maneuver":
		kind := attack.FakeSplit
		victim := uint32(0)
		switch w.opts.FakeManeuverVariant {
		case "", "split":
		case "entrance":
			kind = attack.FakeEntrance
			victim = w.agents[w.opts.Vehicles/2].ID()
		case "leave":
			kind = attack.FakeLeave
			victim = w.agents[1].ID()
		case "dissolve":
			kind = attack.FakeDissolve
		default:
			return fmt.Errorf("scenario: unknown fake-maneuver variant %q", w.opts.FakeManeuverVariant)
		}
		// Forgeries claim the leader — except fake leave, which claims
		// the victim.
		claimed := uint32(1)
		if kind == attack.FakeLeave {
			claimed = victim
		}
		w.eval = metrics.NewDetectionEval(claimed)
		fm := attack.NewFakeManeuver(w.k, newRadio(), kind, cfg.PlatoonID)
		fm.SpoofSender = 1
		fm.VictimID = victim
		fm.Slot = uint16(w.opts.Vehicles / 2)
		fm.GapMetres = 30
		if w.opts.AttackOneShot {
			fm.MaxShots = 1
		}
		armAt(fm)

	case "jamming":
		power := w.opts.JammerPowerDBm
		if power == 0 {
			power = 40
		}
		w.eval = metrics.NewDetectionEval()
		jam := attack.NewJamming(w.k, w.bus, 0, power, mac.JamConstant)
		jam.SetRecorder(w.recorder())
		jam.SetSpans(w.spans)
		w.jam = jam
		// The jammer drives alongside: track the platoon centre.
		mid := w.opts.Vehicles / 2
		w.k.Every(0, 100*sim.Millisecond, "jammer.follow", func() {
			jam.Jammer.Position = w.vehs[mid].State().Position - 20
		})
		armAt(jam)

	case "dos":
		w.eval = metrics.NewDetectionEval() // flood IDs are transient
		dos := attack.NewDoSFlood(w.k, newRadio(), cfg.PlatoonID, dosIDBase)
		armAt(dos)

	case "impersonation":
		victim := w.agents[1].ID()
		w.eval = metrics.NewDetectionEval(victim)
		im := attack.NewImpersonation(w.k, newRadio(), cfg.PlatoonID, victim)
		armAt(im)

	case "sensor-spoofing":
		// Combined GPS pull-back plus forward-sensor blinding on the
		// first member (§V-G).
		victimIdx := 1
		w.eval = metrics.NewDetectionEval(w.agents[victimIdx].ID())
		spoof := attack.NewGPSSpoof(w.k, w.gpses[victimIdx], -5)
		blind := attack.NewSensorBlind(w.radars[victimIdx])
		armAt(attack.NewVPD(spoof, blind))

	default:
		return fmt.Errorf("scenario: unknown attack key %q", w.opts.AttackKey)
	}
	return nil
}
