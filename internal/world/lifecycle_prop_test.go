package world

// Property-based lifecycle tests: seeded random operation sequences
// against the PlatoonManager never violate the roster invariants —
// no vehicle in two platoons, leaders never listed as members,
// rosters bounded, the real vehicle population conserved — and the
// codec round-trips every roster unchanged mid-sequence (the
// cross-shard migration path).

import (
	"reflect"
	"testing"

	"platoonsec/internal/sim"
)

// propWorld seeds a manager with a mixed population.
func propWorld(rng *sim.Stream) *Manager {
	m := NewManager(12, 4.5)
	for i := 0; i < 8; i++ {
		u := Unit{LeaderVeh: uint32(100 + i*20), PosM: float64(i) * 500, GapM: 8}
		for j := 0; j < rng.Intn(6); j++ {
			u.Members = append(u.Members, u.LeaderVeh+1+uint32(j))
		}
		m.Create(u)
	}
	for i := 0; i < 5; i++ {
		m.Create(Unit{LeaderVeh: uint32(1000 + i), PosM: float64(i) * 700, GapM: 8})
	}
	for i := 0; i < 2; i++ {
		m.Create(Unit{LeaderVeh: ghostVehBase + uint32(i), Ghost: true, PosM: float64(i) * 900, GapM: 8})
	}
	return m
}

// pick returns a random live unit ID satisfying keep.
func pick(m *Manager, rng *sim.Stream, keep func(*Unit) bool) uint32 {
	order := m.Order()
	for try := 0; try < 8; try++ {
		id := order[rng.Intn(len(order))]
		if keep(m.Get(id)) {
			return id
		}
	}
	return 0
}

// TestLifecyclePropertyInvariants drives long random op sequences and
// checks every invariant after every operation.
func TestLifecyclePropertyInvariants(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := sim.NewStream(seed, "lifecycle-prop")
		m := propWorld(rng)
		wantVehicles := m.Vehicles()
		for op := 0; op < 400; op++ {
			switch rng.Intn(6) {
			case 0: // free vehicle joins a platoon
				j := pick(m, rng, func(u *Unit) bool { return !u.Ghost && len(u.Members) == 0 })
				h := pick(m, rng, func(u *Unit) bool { return !u.Ghost && len(u.Members) > 0 })
				if j != 0 && h != 0 && j != h {
					prevGap := m.Get(h).ExtraGapM
					if err := m.Join(j, h); err == nil {
						if m.Get(h).ExtraGapM <= prevGap {
							t.Fatalf("seed %d op %d: join did not open extra gap", seed, op)
						}
					}
				}
			case 1: // tail member leaves
				h := pick(m, rng, func(u *Unit) bool { return !u.Ghost && len(u.Members) > 0 })
				if h != 0 {
					_, _ = m.Leave(h)
				}
			case 2: // platoon splits
				h := pick(m, rng, func(u *Unit) bool { return !u.Ghost && len(u.Members) > 1 })
				if h != 0 {
					_, _ = m.Split(h, rng.Intn(len(m.Get(h).Members)))
				}
			case 3: // two platoons merge
				f := pick(m, rng, func(u *Unit) bool { return !u.Ghost })
				r := pick(m, rng, func(u *Unit) bool { return !u.Ghost })
				if f != 0 && r != 0 && f != r {
					prevGap := m.Get(f).ExtraGapM
					if err := m.Merge(f, r); err == nil && m.Get(f).ExtraGapM <= prevGap {
						t.Fatalf("seed %d op %d: merge did not open extra gap", seed, op)
					}
				}
			case 4: // ghost works the admission protocol
				g := pick(m, rng, func(u *Unit) bool { return u.Ghost && u.HostID == 0 })
				h := pick(m, rng, func(u *Unit) bool { return !u.Ghost && len(u.Members) > 0 })
				if g != 0 && h != 0 {
					_ = m.AdmitGhost(g, h, int64(op))
				}
			case 5: // hosted ghost gets audited out
				g := pick(m, rng, func(u *Unit) bool { return u.Ghost && u.HostID != 0 })
				if g != 0 {
					host := m.Get(g).HostID
					if err := m.EjectGhost(g); err == nil && m.Get(g).Avoid != host {
						t.Fatalf("seed %d op %d: ejected ghost does not avoid ejector", seed, op)
					}
				}
			}
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("seed %d op %d: %v", seed, op, err)
			}
			if m.Vehicles() != wantVehicles {
				t.Fatalf("seed %d op %d: vehicle population drifted %d → %d", seed, op, wantVehicles, m.Vehicles())
			}
		}
	}
}

// TestLifecycleMigrationRoundTrip interleaves random lifecycle ops
// with codec round-trips of random units — the shard-migration path —
// and checks rosters survive bit-exactly.
func TestLifecycleMigrationRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := sim.NewStream(seed, "migration-prop")
		m := propWorld(rng)
		for op := 0; op < 200; op++ {
			switch rng.Intn(3) {
			case 0:
				h := pick(m, rng, func(u *Unit) bool { return !u.Ghost && len(u.Members) > 0 })
				if h != 0 {
					_, _ = m.Leave(h)
				}
			case 1:
				f := pick(m, rng, func(u *Unit) bool { return !u.Ghost })
				r := pick(m, rng, func(u *Unit) bool { return !u.Ghost })
				if f != 0 && r != 0 && f != r {
					_ = m.Merge(f, r)
				}
			case 2:
				id := pick(m, rng, func(u *Unit) bool { return true })
				u := m.Get(id)
				before := *u
				beforeMembers := append([]uint32(nil), u.Members...)
				buf := u.AppendTo(nil)
				if err := DecodeUnit(buf, u); err != nil {
					t.Fatalf("seed %d op %d: migration decode: %v", seed, op, err)
				}
				if !reflect.DeepEqual(u.Members, beforeMembers) {
					t.Fatalf("seed %d op %d: roster changed across migration:\nbefore %v\nafter  %v", seed, op, beforeMembers, u.Members)
				}
				after := *u
				before.Members, after.Members = nil, nil
				if !reflect.DeepEqual(before, after) {
					t.Fatalf("seed %d op %d: unit state changed across migration:\nbefore %+v\nafter  %+v", seed, op, before, after)
				}
			}
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("seed %d op %d: %v", seed, op, err)
			}
		}
	}
}

// TestManagerRejections pins the manager's validation surface: every
// illegal mutation is refused and leaves state untouched.
func TestManagerRejections(t *testing.T) {
	m := NewManager(4, 4.5)
	p := m.Create(Unit{LeaderVeh: 1, Members: []uint32{2, 3}})
	free := m.Create(Unit{LeaderVeh: 10})
	ghost := m.Create(Unit{LeaderVeh: ghostVehBase, Ghost: true})
	full := m.Create(Unit{LeaderVeh: 20, Members: []uint32{21, 22, 23}})

	if err := m.Join(free.ID, full.ID); err == nil {
		t.Error("join into a full platoon succeeded")
	}
	if err := m.Join(p.ID, full.ID); err == nil {
		t.Error("platoon joined as if it were a free vehicle")
	}
	if err := m.Join(ghost.ID, p.ID); err == nil {
		t.Error("ghost passed through the vehicle join path")
	}
	if err := m.Merge(p.ID, full.ID); err == nil {
		t.Error("merge exceeding max size succeeded")
	}
	if err := m.Merge(p.ID, p.ID); err == nil {
		t.Error("self-merge succeeded")
	}
	if err := m.Merge(p.ID, ghost.ID); err == nil {
		t.Error("ghost merged")
	}
	if _, err := m.Leave(free.ID); err == nil {
		t.Error("leave from a memberless unit succeeded")
	}
	if _, err := m.Split(p.ID, 5); err == nil {
		t.Error("split at out-of-range index succeeded")
	}
	if err := m.AdmitGhost(free.ID, p.ID, 0); err == nil {
		t.Error("non-ghost admitted through the ghost path")
	}
	if err := m.EjectGhost(ghost.ID); err == nil {
		t.Error("ejected a ghost that was never admitted")
	}
	if err := m.AdmitGhost(ghost.ID, p.ID, 0); err != nil {
		t.Fatalf("legal ghost admission refused: %v", err)
	}
	if err := m.AdmitGhost(ghost.ID, full.ID, 0); err == nil {
		t.Error("double ghost admission succeeded")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
