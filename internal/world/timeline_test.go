package world

// The world timeline's contract has two halves, both metamorphic:
// enabling it cannot change any other observable (same Result bytes,
// same event stream), and — without a WallClock — the timeline
// itself is partition-invariant, because it samples only the sums
// the shard-invariance suite already pins.

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"platoonsec/internal/sim"
)

// TestTimelineDoesNotChangeResults is the observability-off/on
// metamorphic proof: a run with the timeline enabled reproduces the
// plain run exactly once the Timeline field is stripped.
func TestTimelineDoesNotChangeResults(t *testing.T) {
	o := small()
	o.Duration = 20 * sim.Second
	o.AttackKey = "sybil"

	ref, refEvents, _ := capture(t, o, variant{shards: 2, workers: 2})

	o.Timeline = true
	got, gotEvents, _ := capture(t, o, variant{shards: 2, workers: 2})
	if got.Timeline == nil {
		t.Fatal("timeline enabled but Result.Timeline is nil")
	}
	got.Timeline = nil
	if !reflect.DeepEqual(ref, got) {
		t.Errorf("enabling the timeline changed the Result:\nref: %+v\ngot: %+v", ref, got)
	}
	if !bytes.Equal(refEvents, gotEvents) {
		t.Errorf("enabling the timeline changed the event stream (%d vs %d bytes)",
			len(refEvents), len(gotEvents))
	}
}

// TestTimelineShardInvariance pins the second half: without a
// WallClock, the timeline JSON itself is byte-identical at any shard
// and worker count — per-epoch deltas of partition-invariant sums
// are partition-invariant too.
func TestTimelineShardInvariance(t *testing.T) {
	o := small()
	o.Duration = 20 * sim.Second
	o.Timeline = true

	marshal := func(v variant) []byte {
		o.Shards, o.Workers = v.shards, v.workers
		r, err := Run(o)
		if err != nil {
			t.Fatalf("shards=%d workers=%d: %v", v.shards, v.workers, err)
		}
		b, err := json.Marshal(r.Timeline)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	ref := marshal(variant{shards: 1, workers: 1})
	for _, v := range []variant{{shards: 2, workers: 2}, {shards: 4, workers: 1}} {
		if got := marshal(v); !bytes.Equal(ref, got) {
			t.Errorf("shards=%d workers=%d: timeline diverged from 1-shard reference:\nref: %s\ngot: %s",
				v.shards, v.workers, ref, got)
		}
	}
}

// TestTimelineEpochIndexing checks the sampling cadence: one sample
// per barrier at the simulated epoch end, frame deltas summing back
// to the run totals.
func TestTimelineEpochIndexing(t *testing.T) {
	o := small()
	o.Duration = 5 * sim.Second
	o.Timeline = true
	r, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	tl := r.Timeline
	if tl == nil {
		t.Fatal("no timeline")
	}
	if tl.Recorded != r.Epochs {
		t.Errorf("recorded %d samples over %d epochs", tl.Recorded, r.Epochs)
	}
	var framesTx, ticks uint64
	for i, s := range tl.Samples {
		want := int64(o.Epoch) * int64(i+1)
		if s.AtNS != want {
			t.Errorf("sample %d at %d ns, want epoch end %d", i, s.AtNS, want)
		}
		framesTx += s.Counters["world.frames_tx"]
		ticks += s.Counters["world.unit_ticks"]
		if _, leaked := s.Counters["world.migrations"]; leaked {
			t.Fatalf("sample %d carries the partition-dependent migrations counter", i)
		}
	}
	if framesTx != r.FramesTx {
		t.Errorf("timeline frame deltas sum to %d, run transmitted %d", framesTx, r.FramesTx)
	}
	if ticks != r.UnitTicks {
		t.Errorf("timeline tick deltas sum to %d, run counted %d", ticks, r.UnitTicks)
	}
}

// TestTimelineDisabledAllocFree pins the cost of the disabled path: a
// world without a timeline has nil instruments and a nil ring, so the
// per-epoch hooks the barrier calls unconditionally must not allocate
// (the bench gate would catch a regression as E18 allocs/run drift;
// this pins it exactly).
func TestTimelineDisabledAllocFree(t *testing.T) {
	var w World
	allocs := testing.AllocsPerRun(200, func() {
		w.tlFramesTx.Add(3)
		w.tlDelivered.Add(2)
		w.tlLost.Add(1)
		w.tlJammed.Add(1)
		w.tlUnitTicks.Add(7)
		w.sampleTimeline(42, 0)
	})
	if allocs != 0 {
		t.Errorf("disabled timeline hooks allocate %v per epoch, want 0", allocs)
	}
}

// TestTimelineWallClock checks the opt-in timing gauges: with an
// injected clock every sample carries epoch and shard-step wall
// milliseconds, and stripping the timeline still recovers the plain
// run's Result.
func TestTimelineWallClock(t *testing.T) {
	o := small()
	o.Duration = 5 * sim.Second
	ref, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}

	var fake int64
	o.Timeline = true
	o.WallClock = func() int64 { fake += 1e6; return fake } // 1 ms per reading
	got, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range got.Timeline.Samples {
		if _, ok := s.Gauges["world.epoch_wall_ms"]; !ok {
			t.Fatalf("sample %d missing epoch_wall_ms: %v", i, s.Gauges)
		}
		if _, ok := s.Gauges["world.shard_step_ms_max"]; !ok {
			t.Fatalf("sample %d missing shard_step_ms_max: %v", i, s.Gauges)
		}
	}
	got.Timeline = nil
	if !reflect.DeepEqual(ref, got) {
		t.Errorf("wall-clocked timeline changed the Result:\nref: %+v\ngot: %+v", ref, got)
	}
}
