package world

// The cross-shard handoff codec: every frame and every migrating unit
// crosses an epoch barrier as bytes in this format, even when source
// and destination shard are the same kernel. Routing through the
// codec unconditionally keeps the byte format load-bearing (a field
// the codec forgets breaks single-shard runs too, not just the
// multi-shard corner) and gives the fuzz targets the exact decoder
// the simulation trusts.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"platoonsec/internal/obs/span"
)

// Frame kinds.
const (
	// FrameBeacon is a unit's periodic CAM: position, speed, roster
	// size.
	FrameBeacon uint8 = iota + 1
	// FrameJoinReq asks Dst's leader for admission.
	FrameJoinReq
	// FrameJoinResp answers a join request (Accept bit).
	FrameJoinResp
	frameKindEnd
)

// Frame is one over-the-air world message.
type Frame struct {
	Kind    uint8
	Accept  bool
	Src     uint32 // sender unit
	SrcVeh  uint32 // sender leader vehicle identity
	Dst     uint32 // addressed unit (0 = broadcast)
	Seq     uint32 // sender frame sequence
	AtNS    int64  // transmit time
	PosM    float64
	SpeedMS float64
	Size    uint16 // sender roster size
	// Span is the frame's transmit span, stamped by the coordinator
	// at the barrier (0 for unspanned traffic such as beacons).
	Span span.ID
}

// FrameWireSize is the fixed encoded size of a Frame.
const FrameWireSize = 1 + 1 + 4 + 4 + 4 + 4 + 8 + 8 + 8 + 2 + 8

// MaxWireMembers bounds a migration record's roster; a longer count
// is rejected before any allocation, so a truncated or hostile length
// prefix cannot balloon the decoder.
const MaxWireMembers = 4096

// unitWireVersion guards the migration record layout.
const unitWireVersion = 1

// Codec errors.
var (
	ErrShortBuffer    = errors.New("world: buffer too short")
	ErrTrailingBytes  = errors.New("world: trailing bytes after record")
	ErrBadFrameKind   = errors.New("world: unknown frame kind")
	ErrBadVersion     = errors.New("world: unknown migration record version")
	ErrTooManyMembers = fmt.Errorf("world: member count exceeds %d", MaxWireMembers)
	// ErrNonCanonical rejects bytes that decode to a record whose
	// re-encoding would differ (undefined flag bits, oversized scalar
	// words): the wire format admits exactly one encoding per record.
	ErrNonCanonical = errors.New("world: non-canonical encoding")
)

const frameFlagAccept = 1 << 0

// AppendTo encodes the frame, appending to buf.
func (f *Frame) AppendTo(buf []byte) []byte {
	var flags uint8
	if f.Accept {
		flags |= frameFlagAccept
	}
	buf = append(buf, f.Kind, flags)
	buf = binary.LittleEndian.AppendUint32(buf, f.Src)
	buf = binary.LittleEndian.AppendUint32(buf, f.SrcVeh)
	buf = binary.LittleEndian.AppendUint32(buf, f.Dst)
	buf = binary.LittleEndian.AppendUint32(buf, f.Seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(f.AtNS))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f.PosM))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f.SpeedMS))
	buf = binary.LittleEndian.AppendUint16(buf, f.Size)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(f.Span))
	return buf
}

// DecodeFrame decodes exactly one frame from b. Short input, trailing
// bytes and unknown kinds are rejected.
func DecodeFrame(b []byte, f *Frame) error {
	if len(b) < FrameWireSize {
		return fmt.Errorf("%w: frame needs %d bytes, have %d", ErrShortBuffer, FrameWireSize, len(b))
	}
	if len(b) > FrameWireSize {
		return fmt.Errorf("%w: frame is %d bytes, got %d", ErrTrailingBytes, FrameWireSize, len(b))
	}
	kind := b[0]
	if kind == 0 || kind >= frameKindEnd {
		return fmt.Errorf("%w: %d", ErrBadFrameKind, kind)
	}
	if b[1]&^frameFlagAccept != 0 {
		return fmt.Errorf("%w: undefined frame flag bits %#x", ErrNonCanonical, b[1])
	}
	f.Kind = kind
	f.Accept = b[1]&frameFlagAccept != 0
	f.Src = binary.LittleEndian.Uint32(b[2:])
	f.SrcVeh = binary.LittleEndian.Uint32(b[6:])
	f.Dst = binary.LittleEndian.Uint32(b[10:])
	f.Seq = binary.LittleEndian.Uint32(b[14:])
	f.AtNS = int64(binary.LittleEndian.Uint64(b[18:]))
	f.PosM = math.Float64frombits(binary.LittleEndian.Uint64(b[26:]))
	f.SpeedMS = math.Float64frombits(binary.LittleEndian.Uint64(b[34:]))
	f.Size = binary.LittleEndian.Uint16(b[42:])
	f.Span = span.ID(binary.LittleEndian.Uint64(b[44:]))
	return nil
}

const unitFlagGhost = 1 << 0

// unitWireSize returns the encoded size of a unit with n members.
func unitWireSize(n int) int {
	// version, flags, 7×u32 (id, leaderVeh, hostID, avoid, hops,
	// pendingJoin, aheadID), member count, members, 7×f64, aheadSize,
	// 9×i64/u64 scalars.
	return 2 + 7*4 + 2 + 4*n + 7*8 + 2 + 9*8
}

// AppendTo encodes the unit as a migration record, appending to buf.
func (u *Unit) AppendTo(buf []byte) []byte {
	var flags uint8
	if u.Ghost {
		flags |= unitFlagGhost
	}
	buf = append(buf, unitWireVersion, flags)
	buf = binary.LittleEndian.AppendUint32(buf, u.ID)
	buf = binary.LittleEndian.AppendUint32(buf, u.LeaderVeh)
	buf = binary.LittleEndian.AppendUint32(buf, u.HostID)
	buf = binary.LittleEndian.AppendUint32(buf, u.Avoid)
	buf = binary.LittleEndian.AppendUint32(buf, u.Hops)
	buf = binary.LittleEndian.AppendUint32(buf, u.PendingJoin)
	buf = binary.LittleEndian.AppendUint32(buf, u.AheadID)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(u.Members)))
	for _, m := range u.Members {
		buf = binary.LittleEndian.AppendUint32(buf, m)
	}
	for _, v := range [...]float64{u.PosM, u.SpeedMS, u.TargetMS, u.GapM, u.ExtraGapM, u.AheadDistM, u.AheadSpeedMS} {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	buf = binary.LittleEndian.AppendUint16(buf, u.AheadSize)
	for _, v := range [...]uint64{uint64(u.AdmittedAtNS), uint64(u.LastSpan), uint64(u.Seq), u.Draws, u.IntentSeq, uint64(u.BeaconAtNS), uint64(u.NextActAtNS)} {
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(u.PendingAtNS))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(u.AheadAtNS))
	return buf
}

// DecodeUnit decodes exactly one migration record from b into u,
// replacing all unit state. Truncated input, oversized member counts,
// trailing bytes and unknown versions are rejected; on error u is
// unchanged.
func DecodeUnit(b []byte, u *Unit) error {
	if len(b) < 2+7*4+2 {
		return fmt.Errorf("%w: migration header needs %d bytes, have %d", ErrShortBuffer, 2+7*4+2, len(b))
	}
	if b[0] != unitWireVersion {
		return fmt.Errorf("%w: %d", ErrBadVersion, b[0])
	}
	n := int(binary.LittleEndian.Uint16(b[2+7*4:]))
	if n > MaxWireMembers {
		return fmt.Errorf("%w: got %d", ErrTooManyMembers, n)
	}
	want := unitWireSize(n)
	if len(b) < want {
		return fmt.Errorf("%w: migration record with %d members needs %d bytes, have %d", ErrShortBuffer, n, want, len(b))
	}
	if len(b) > want {
		return fmt.Errorf("%w: migration record is %d bytes, got %d", ErrTrailingBytes, want, len(b))
	}
	if b[1]&^unitFlagGhost != 0 {
		return fmt.Errorf("%w: undefined unit flag bits %#x", ErrNonCanonical, b[1])
	}
	var d Unit
	d.Ghost = b[1]&unitFlagGhost != 0
	d.ID = binary.LittleEndian.Uint32(b[2:])
	d.LeaderVeh = binary.LittleEndian.Uint32(b[6:])
	d.HostID = binary.LittleEndian.Uint32(b[10:])
	d.Avoid = binary.LittleEndian.Uint32(b[14:])
	d.Hops = binary.LittleEndian.Uint32(b[18:])
	d.PendingJoin = binary.LittleEndian.Uint32(b[22:])
	d.AheadID = binary.LittleEndian.Uint32(b[26:])
	off := 2 + 7*4 + 2
	if n > 0 {
		d.Members = make([]uint32, n)
		for i := range d.Members {
			d.Members[i] = binary.LittleEndian.Uint32(b[off:])
			off += 4
		}
	}
	f := func() float64 {
		v := math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
		off += 8
		return v
	}
	d.PosM, d.SpeedMS, d.TargetMS, d.GapM, d.ExtraGapM, d.AheadDistM, d.AheadSpeedMS = f(), f(), f(), f(), f(), f(), f()
	d.AheadSize = binary.LittleEndian.Uint16(b[off:])
	off += 2
	g := func() uint64 {
		v := binary.LittleEndian.Uint64(b[off:])
		off += 8
		return v
	}
	d.AdmittedAtNS = int64(g())
	d.LastSpan = span.ID(g())
	seqWord := g()
	if seqWord > 0xffffffff {
		return fmt.Errorf("%w: frame sequence %d exceeds 32 bits", ErrNonCanonical, seqWord)
	}
	d.Seq = uint32(seqWord)
	d.Draws = g()
	d.IntentSeq = g()
	d.BeaconAtNS = int64(g())
	d.NextActAtNS = int64(g())
	d.PendingAtNS = int64(g())
	d.AheadAtNS = int64(g())
	*u = d
	return nil
}
