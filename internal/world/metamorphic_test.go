package world

// The metamorphic shard-invariance suite: the world's central
// contract is that Shards and Workers are pure throughput knobs —
// every observable (the Result struct, the JSONL event stream, the
// forensics JSON) is byte-identical at any shard count and any worker
// count. These tests pin that for shard counts 1/2/4/GOMAXPROCS and
// worker counts 1/4 across baseline and both attacks. On mismatch the
// divergent artifacts are written under world-metamorphic/ (uploaded
// by CI) so the break is diffable.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"platoonsec/internal/sim"
)

// variant is one (shards, workers) cell of the invariance matrix.
type variant struct {
	shards, workers int
}

func variants() []variant {
	vs := []variant{
		{shards: 1, workers: 1},
		{shards: 2, workers: 1},
		{shards: 2, workers: 4},
		{shards: 4, workers: 1},
		{shards: 4, workers: 4},
	}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		vs = append(vs, variant{shards: p, workers: p})
	}
	return vs
}

// capture runs one variant and returns its three observables.
func capture(t *testing.T, o Options, v variant) (*Result, []byte, []byte) {
	t.Helper()
	o.Shards = v.shards
	o.Workers = v.workers
	var events bytes.Buffer
	o.EventsJSONL = &events
	r, err := Run(o)
	if err != nil {
		t.Fatalf("shards=%d workers=%d: %v", v.shards, v.workers, err)
	}
	// Migrations is the one documented partition-dependent diagnostic;
	// mask it out of the invariance comparison.
	r.Migrations = 0
	var forensics []byte
	if r.Forensics != nil {
		forensics, err = json.MarshalIndent(r.Forensics, "", "  ")
		if err != nil {
			t.Fatalf("shards=%d workers=%d: marshal forensics: %v", v.shards, v.workers, err)
		}
	}
	return r, events.Bytes(), forensics
}

// dumpArtifacts writes the reference and divergent observables for CI
// to pick up.
func dumpArtifacts(t *testing.T, tag string, refEvents, gotEvents, refForensics, gotForensics []byte) {
	t.Helper()
	dir := filepath.Join("world-metamorphic", tag)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("cannot write artifacts: %v", err)
		return
	}
	for name, b := range map[string][]byte{
		"events.ref.jsonl":   refEvents,
		"events.got.jsonl":   gotEvents,
		"forensics.ref.json": refForensics,
		"forensics.got.json": gotForensics,
	} {
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
			t.Logf("cannot write %s: %v", name, err)
		}
	}
	t.Logf("divergence artifacts written to %s", dir)
}

// TestShardInvariance is the headline metamorphic property: for each
// scenario flavour, every (shards, workers) variant reproduces the
// single-shard single-worker run exactly.
func TestShardInvariance(t *testing.T) {
	flavours := []struct {
		name string
		mut  func(*Options)
	}{
		{"baseline", func(o *Options) {}},
		{"jamming", func(o *Options) { o.AttackKey = "jamming" }},
		{"sybil", func(o *Options) { o.AttackKey = "sybil" }},
	}
	for _, fl := range flavours {
		fl := fl
		t.Run(fl.name, func(t *testing.T) {
			t.Parallel()
			o := small()
			o.Duration = 40 * sim.Second
			o.Spans = true
			fl.mut(&o)
			ref, refEvents, refForensics := capture(t, o, variant{shards: 1, workers: 1})
			for _, v := range variants()[1:] {
				got, gotEvents, gotForensics := capture(t, o, v)
				tag := fmt.Sprintf("%s-s%d-w%d", fl.name, v.shards, v.workers)
				if !reflect.DeepEqual(ref, got) {
					t.Errorf("%s: Result diverged from 1-shard reference:\nref: %+v\ngot: %+v", tag, ref, got)
				}
				if !bytes.Equal(refEvents, gotEvents) {
					t.Errorf("%s: JSONL event stream diverged (%d vs %d bytes)", tag, len(refEvents), len(gotEvents))
					dumpArtifacts(t, tag, refEvents, gotEvents, refForensics, gotForensics)
				}
				if !bytes.Equal(refForensics, gotForensics) {
					t.Errorf("%s: forensics JSON diverged (%d vs %d bytes)", tag, len(refForensics), len(gotForensics))
					dumpArtifacts(t, tag, refEvents, gotEvents, refForensics, gotForensics)
				}
			}
		})
	}
}

// TestShardInvarianceSeeds widens the property over seeds (events
// only, spans off — the cheap wide net).
func TestShardInvarianceSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep is not short")
	}
	for seed := int64(2); seed <= 6; seed++ {
		o := small()
		o.Seed = seed
		o.Duration = 20 * sim.Second
		o.AttackKey = "sybil"
		ref, refEvents, _ := capture(t, o, variant{shards: 1, workers: 1})
		for _, v := range []variant{{shards: 3, workers: 2}, {shards: 5, workers: 4}} {
			got, gotEvents, _ := capture(t, o, v)
			if !reflect.DeepEqual(ref, got) {
				t.Errorf("seed %d shards=%d: Result diverged:\nref: %+v\ngot: %+v", seed, v.shards, ref, got)
			}
			if !bytes.Equal(refEvents, gotEvents) {
				t.Errorf("seed %d shards=%d: event stream diverged", seed, v.shards)
			}
		}
	}
}

// TestWorkersOnlyInvariance pins the engine-level half of the
// property in isolation: same sharding, different worker pools.
func TestWorkersOnlyInvariance(t *testing.T) {
	o := small()
	o.Duration = 20 * sim.Second
	o.Shards = 4
	ref, refEvents, _ := capture(t, o, variant{shards: 4, workers: 1})
	for _, workers := range []int{2, 4, 0} { // 0 = GOMAXPROCS
		got, gotEvents, _ := capture(t, o, variant{shards: 4, workers: workers})
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("workers=%d: Result diverged:\nref: %+v\ngot: %+v", workers, ref, got)
		}
		if !bytes.Equal(refEvents, gotEvents) {
			t.Errorf("workers=%d: event stream diverged", workers)
		}
	}
}
