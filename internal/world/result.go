package world

import (
	"fmt"
	"strings"

	"platoonsec/internal/obs/span"
	"platoonsec/internal/obs/timeline"
)

// Result is the reduced outcome of one world run. Every field is
// byte-identical at any shard count and any worker count — the
// metamorphic suite pins that — so nothing here may depend on the
// partition (per-shard splits stay internal; only partition-invariant
// sums and final state surface).
type Result struct {
	AttackKey string

	// Final population.
	Platoons   int // units with at least one member
	FreeAgents int // real single-vehicle units
	Ghosts     int // Sybil identities on the road
	Vehicles   int // real vehicle population (conserved)

	// Lifecycle totals.
	Lifecycle LifecycleCounters

	// Frame accounting. FramesTx counts transmissions; Delivered,
	// Lost and Jammed count per-(frame, receiver) attempts.
	FramesTx  uint64
	Delivered uint64
	Lost      uint64
	Jammed    uint64
	PDR       float64
	// NearPDR/FarPDR split delivery by receiver distance to the
	// junction-0 interchange (the E18 observable).
	NearPDR float64
	FarPDR  float64
	// AirtimeS is the total channel occupancy in seconds across the
	// whole ring (a partition-invariant utilization measure).
	AirtimeS float64

	// UnitTicks counts per-unit epoch updates; Epochs the barrier
	// count.
	UnitTicks uint64
	Epochs    uint64

	// Migrations counts cross-shard unit handoffs. It is the one
	// deliberately partition-DEPENDENT field (1 shard ⇒ 0; more
	// shards ⇒ more boundary crossings): a throughput diagnostic,
	// excluded from the metamorphic invariance comparison.
	Migrations uint64

	// Spans and Forensics are the provenance surfaces (nil unless
	// Options.Spans).
	Spans     *span.Stats
	Forensics *span.Forensics

	// Timeline is the per-epoch metrics series (nil unless
	// Options.Timeline): partition-invariant counter deltas per
	// barrier, indexed by simulated time, plus wall-timing gauges
	// when a WallClock was injected. Stripping this field recovers a
	// byte-identical Result with or without the recorder — the
	// metamorphic suite pins that.
	Timeline *timeline.Series `json:",omitempty"`
}

// Effects lists the world-level effect kinds a forensics report
// covers, in rendering order.
func Effects() []string {
	return []string{
		"world.roster_add",
		"world.ejected",
		"world.join_denied",
		"world.merge",
		"world.split",
		"world.frame_loss",
	}
}

// String renders a compact report.
func (r *Result) String() string {
	var b strings.Builder
	name := r.AttackKey
	if name == "" {
		name = "baseline"
	}
	fmt.Fprintf(&b, "world attack=%s\n", name)
	fmt.Fprintf(&b, "  population: platoons=%d freeAgents=%d ghosts=%d vehicles=%d\n",
		r.Platoons, r.FreeAgents, r.Ghosts, r.Vehicles)
	c := r.Lifecycle
	fmt.Fprintf(&b, "  lifecycle:  created=%d joins=%d denials=%d leaves=%d splits=%d merges=%d junctions=%d gapRestores=%d\n",
		c.Created, c.Joins, c.JoinDenials, c.Leaves, c.Splits, c.Merges, c.JunctionCrossings, c.GapRestores)
	if c.GhostAdmissions+c.GhostEjections > 0 {
		fmt.Fprintf(&b, "  sybil:      admissions=%d ejections=%d hops=%d\n",
			c.GhostAdmissions, c.GhostEjections, c.GhostHops)
	}
	fmt.Fprintf(&b, "  channel:    framesTx=%d delivered=%d lost=%d jammed=%d PDR=%.3f nearPDR=%.3f farPDR=%.3f airtime=%.2fs\n",
		r.FramesTx, r.Delivered, r.Lost, r.Jammed, r.PDR, r.NearPDR, r.FarPDR, r.AirtimeS)
	fmt.Fprintf(&b, "  run:        epochs=%d unitTicks=%d migrations=%d\n", r.Epochs, r.UnitTicks, r.Migrations)
	if r.Timeline != nil {
		fmt.Fprintf(&b, "  timeline:   samples=%d recorded=%d dropped=%d\n",
			len(r.Timeline.Samples), r.Timeline.Recorded, r.Timeline.Dropped)
	}
	return b.String()
}

// worldEvent is one JSONL line: lifecycle and attack milestones in
// canonical order. The stream is byte-identical at any shard and
// worker count.
type worldEvent struct {
	TNS    int64  `json:"t_ns"`
	Kind   string `json:"kind"`
	Unit   uint32 `json:"unit,omitempty"`
	Other  uint32 `json:"other,omitempty"`
	Detail string `json:"detail,omitempty"`
}
