package world

// Ring-road geometry and the counter-keyed randomness that makes the
// world partition-invariant.
//
// The highway is a ring of LengthM metres with evenly spaced
// junctions. Positions are scalar ring coordinates in [0, LengthM);
// vehicles only move forward. A ring (rather than an open segment)
// keeps the vehicle population closed for the whole run, so roster
// conservation is a checkable invariant instead of a boundary
// condition.

// ring is the road geometry shared by every shard.
type ring struct {
	lengthM   float64
	junctions int
}

// wrap maps any forward position back onto [0, lengthM).
func (r ring) wrap(pos float64) float64 {
	for pos >= r.lengthM {
		pos -= r.lengthM
	}
	for pos < 0 {
		pos += r.lengthM
	}
	return pos
}

// forward returns the forward (driving-direction) distance from a to
// b, in [0, lengthM).
func (r ring) forward(a, b float64) float64 {
	d := b - a
	if d < 0 {
		d += r.lengthM
	}
	return d
}

// dist returns the shortest ring distance between a and b.
func (r ring) dist(a, b float64) float64 {
	d := r.forward(a, b)
	if d > r.lengthM/2 {
		d = r.lengthM - d
	}
	return d
}

// junctionPos returns the position of junction j.
func (r ring) junctionPos(j int) float64 {
	if r.junctions <= 0 {
		return 0
	}
	return float64(j) * r.lengthM / float64(r.junctions)
}

// crossedJunction returns the index of the first junction passed when
// moving forward from oldPos to newPos, or -1. Epochs are short
// relative to junction spacing, so at most one junction is crossed
// per step; the world validates that ratio at build time.
func (r ring) crossedJunction(oldPos, newPos float64) int {
	if r.junctions <= 0 {
		return -1
	}
	travelled := r.forward(oldPos, newPos)
	for j := 0; j < r.junctions; j++ {
		if d := r.forward(oldPos, r.junctionPos(j)); d > 0 && d <= travelled {
			return j
		}
	}
	return -1
}

// FNV-1a 64-bit parameters, matching span.Derive's choice: a tiny,
// stable, dependency-free hash.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// dice is the world's randomness: a pure function of (seed, entity,
// draw index) onto [0, 1). Unlike a sequential sim.Stream, a
// counter-keyed draw has no generator state to carry or replay, so a
// unit migrating between shard kernels keeps its exact future — the
// property the shard-invariance contract rests on (DESIGN.md §10).
// Each unit draws with its own ID and a monotonic per-unit counter,
// so draw order within a unit is canonical and draws never interleave
// across units.
func dice(seed int64, id uint32, n uint64) float64 {
	h := uint64(fnvOffset)
	h = fnvMix(h, uint64(seed), 8)
	h = fnvMix(h, uint64(id), 4)
	h = fnvMix(h, n, 8)
	// Top 53 bits → uniform float64 in [0, 1).
	return float64(h>>11) / (1 << 53)
}

// fnvMix folds the low `bytes` bytes of v into the running hash.
func fnvMix(h, v uint64, bytes int) uint64 {
	for i := 0; i < bytes; i++ {
		h ^= (v >> (8 * i)) & 0xff
		h *= fnvPrime
	}
	return h
}
