package world

import (
	"bytes"
	"reflect"
	"testing"

	"platoonsec/internal/sim"
)

func sampleFrame() Frame {
	return Frame{
		Kind: FrameJoinReq, Accept: true, Src: 7, SrcVeh: 1042, Dst: 9,
		Seq: 31, AtNS: 12_345_678_901, PosM: 4821.25, SpeedMS: 29.5,
		Size: 6, Span: 99,
	}
}

func sampleUnit() Unit {
	return Unit{
		ID: 17, LeaderVeh: 301, Members: []uint32{302, 303, 304},
		Ghost: false, HostID: 0, Avoid: 4, Hops: 2,
		PosM: 10_551.5, SpeedMS: 28.75, TargetMS: 30, GapM: 8, ExtraGapM: 3.5,
		AdmittedAtNS: 5_000_000_000, LastSpan: 12, Seq: 40, Draws: 511,
		IntentSeq: 17, BeaconAtNS: 6_000_000_000, NextActAtNS: 7_000_000_000,
		PendingJoin: 3, PendingAtNS: 5_500_000_000,
		AheadID: 6, AheadSize: 9, AheadDistM: 140.5, AheadSpeedMS: 27.25,
		AheadAtNS: 5_900_000_000,
	}
}

// TestFrameRoundTrip checks encode→decode is the identity and the
// wire size constant is honest.
func TestFrameRoundTrip(t *testing.T) {
	f := sampleFrame()
	b := f.AppendTo(nil)
	if len(b) != FrameWireSize {
		t.Fatalf("encoded %d bytes, FrameWireSize says %d", len(b), FrameWireSize)
	}
	var got Frame
	if err := DecodeFrame(b, &got); err != nil {
		t.Fatal(err)
	}
	if got != f {
		t.Fatalf("round trip changed frame:\nin  %+v\nout %+v", f, got)
	}
}

// TestFrameRejections pins the decoder's failure modes.
func TestFrameRejections(t *testing.T) {
	f := sampleFrame()
	b := f.AppendTo(nil)
	var got Frame
	for cut := 0; cut < len(b); cut++ {
		if err := DecodeFrame(b[:cut], &got); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	if err := DecodeFrame(append(b, 0), &got); err == nil {
		t.Fatal("trailing byte accepted")
	}
	bad := append([]byte(nil), b...)
	bad[0] = byte(frameKindEnd)
	if err := DecodeFrame(bad, &got); err == nil {
		t.Fatal("out-of-range frame kind accepted")
	}
	bad[0] = 0
	if err := DecodeFrame(bad, &got); err == nil {
		t.Fatal("zero frame kind accepted")
	}
}

// TestUnitRoundTrip checks the migration record survives bit-exactly,
// including ghost state and an empty roster.
func TestUnitRoundTrip(t *testing.T) {
	for _, u := range []Unit{
		sampleUnit(),
		{ID: 1, LeaderVeh: 2, PosM: 1},
		{ID: 900, LeaderVeh: ghostVehBase, Ghost: true, Hops: 3, Avoid: 12},
	} {
		b := u.AppendTo(nil)
		if len(b) != unitWireSize(len(u.Members)) {
			t.Fatalf("encoded %d bytes, unitWireSize says %d", len(b), unitWireSize(len(u.Members)))
		}
		var got Unit
		if err := DecodeUnit(b, &got); err != nil {
			t.Fatal(err)
		}
		if len(got.Members) == 0 {
			got.Members = u.Members // nil vs empty
		}
		if !reflect.DeepEqual(u, got) {
			t.Fatalf("round trip changed unit:\nin  %+v\nout %+v", u, got)
		}
	}
}

// TestUnitRejections pins the migration decoder's failure modes and
// that a failed decode leaves the destination untouched.
func TestUnitRejections(t *testing.T) {
	u := sampleUnit()
	b := u.AppendTo(nil)
	pristine := sampleUnit()
	got := sampleUnit()
	check := func(name string, buf []byte) {
		t.Helper()
		if err := DecodeUnit(buf, &got); err == nil {
			t.Fatalf("%s accepted", name)
		}
		if !reflect.DeepEqual(got, pristine) {
			t.Fatalf("%s mutated destination on error", name)
		}
	}
	for cut := 0; cut < len(b); cut += 7 {
		check("truncation", b[:cut])
	}
	check("trailing byte", append(append([]byte(nil), b...), 1))
	bad := append([]byte(nil), b...)
	bad[0] = unitWireVersion + 1
	check("bad version", bad)
	// Oversized member count: patch the count field then extend the
	// buffer so only the count check can reject it.
	bad = append([]byte(nil), b...)
	countOff := 2 + 7*4
	bad[countOff] = 0xff
	bad[countOff+1] = 0xff
	check("oversized roster", append(bad, make([]byte, 1<<18)...))
}

// TestCodecAppendReuse checks AppendTo composes into a shared buffer
// — the batched handoff path.
func TestCodecAppendReuse(t *testing.T) {
	f1, f2 := sampleFrame(), sampleFrame()
	f2.Seq = 32
	buf := f1.AppendTo(nil)
	buf = f2.AppendTo(buf)
	if len(buf) != 2*FrameWireSize {
		t.Fatalf("batched encode length %d", len(buf))
	}
	var g1, g2 Frame
	if err := DecodeFrame(buf[:FrameWireSize], &g1); err != nil {
		t.Fatal(err)
	}
	if err := DecodeFrame(buf[FrameWireSize:], &g2); err != nil {
		t.Fatal(err)
	}
	if g1 != f1 || g2 != f2 {
		t.Fatal("batched round trip changed frames")
	}
}

// FuzzDecodeWorldFrame fuzzes the cross-shard frame codec: arbitrary
// bytes never panic, and every accepted frame re-encodes to the exact
// input bytes (decode is a bijection onto valid wire frames).
func FuzzDecodeWorldFrame(f *testing.F) {
	sample := sampleFrame()
	f.Add(sample.AppendTo(nil))
	beacon := Frame{Kind: FrameBeacon, Src: 1, SrcVeh: 1}
	f.Add(beacon.AppendTo(nil))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, FrameWireSize))
	f.Fuzz(func(t *testing.T, b []byte) {
		var fr Frame
		if err := DecodeFrame(b, &fr); err != nil {
			return
		}
		if len(b) != FrameWireSize {
			t.Fatalf("accepted %d bytes, wire size is %d", len(b), FrameWireSize)
		}
		out := fr.AppendTo(nil)
		if !bytes.Equal(out, b) {
			t.Fatalf("re-encode mismatch:\nin  %x\nout %x", b, out)
		}
	})
}

// FuzzDecodeWorldMigration fuzzes the migrating-unit codec the same
// way.
func FuzzDecodeWorldMigration(f *testing.F) {
	sample := sampleUnit()
	f.Add(sample.AppendTo(nil))
	small := Unit{ID: 1, LeaderVeh: 2}
	f.Add(small.AppendTo(nil))
	ghost := Unit{ID: 3, LeaderVeh: ghostVehBase, Ghost: true}
	f.Add(ghost.AppendTo(nil))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x01}, 64))
	f.Fuzz(func(t *testing.T, b []byte) {
		var u Unit
		if err := DecodeUnit(b, &u); err != nil {
			return
		}
		if len(u.Members) > MaxWireMembers {
			t.Fatalf("accepted %d members, bound is %d", len(u.Members), MaxWireMembers)
		}
		out := u.AppendTo(nil)
		if !bytes.Equal(out, b) {
			t.Fatalf("re-encode mismatch:\nin  %x\nout %x", b, out)
		}
	})
}

// TestFrameAtNSRange pins that times survive the int64↔wire boundary
// for the full simulated range.
func TestFrameAtNSRange(t *testing.T) {
	for _, at := range []int64{0, 1, int64(3600 * sim.Second), 1<<62 - 1, -1} {
		f := sampleFrame()
		f.AtNS = at
		var got Frame
		if err := DecodeFrame(f.AppendTo(nil), &got); err != nil {
			t.Fatal(err)
		}
		if got.AtNS != at {
			t.Fatalf("AtNS %d became %d", at, got.AtNS)
		}
	}
}
