package world

// A shard owns one arc of the ring: its own deterministic sim.Kernel,
// a phy.Channel for propagation math, the shared mac radio config and
// jammer, and the units currently inside the arc. During an epoch a
// shard touches only its own state plus the immutable global air
// slice from the previous barrier, so shards run in parallel with no
// synchronisation; everything they want to say to the rest of the
// world (frames, lifecycle proposals, span/event intents) is queued
// locally and drained by the coordinator at the barrier in canonical
// order.

import (
	"sort"

	"platoonsec/internal/mac"
	"platoonsec/internal/obs/span"
	"platoonsec/internal/phy"
	"platoonsec/internal/sim"
)

// txFrame is an outbound frame plus its provenance threading: cause
// is a concrete span (typically the received frame that triggered
// this one); causeRef references an intent emitted by the same unit
// in the same epoch (the join-denial span, threaded into the deny
// response exactly like the platoon layer's one-shot txCause).
type txFrame struct {
	Frame
	cause    span.ID
	causeRef uint64 // unit<<32 | intentSeq; 0 = none
}

// intent is a shard-local observation drained at the barrier: a span
// and/or JSONL event to be recorded in canonical (atNS, unit,
// intentSeq) order by the coordinator.
type intent struct {
	atNS   int64
	unit   uint32
	seq    uint64 // per-unit intent sequence
	kind   string
	other  uint32
	value  float64
	parent span.ID
	cause  span.ID
}

// proposal asks the manager for a lifecycle mutation at the barrier.
type proposal struct {
	atNS     int64
	kind     uint8
	unit     uint32 // proposing / affected unit
	seq      uint64 // per-unit sequence (shared with intents)
	other    uint32 // counterpart unit
	idx      int    // split index
	targetMS float64
	cause    span.ID
}

// Proposal kinds.
const (
	propJoin uint8 = iota + 1
	propAdmitGhost
	propMerge
	propSplit
	propLeave
	propEjectGhost
	propJunction
)

type shard struct {
	w   *World
	idx int
	k   *sim.Kernel
	ch  *phy.Channel
	cfg mac.Config
	jam *mac.Jammer // nil unless the jamming attack is configured

	units map[uint32]*Unit
	order []uint32

	// Per-epoch outputs, drained and reset at each barrier.
	outbox    []txFrame
	intents   []intent
	proposals []proposal

	// Frame accounting, summed into the world totals at each barrier.
	// Per-(frame, receiver) work is identical at any sharding, so the
	// sums are invariant even though the per-shard split is not.
	delivered, lost, jammed uint64
	nearTx, nearOK          uint64
	farTx, farOK            uint64
	denials, gapRestores    uint64
	airtimeNS               int64
	unitTicks               uint64

	// wallNS is the shard's own wall-clock step duration for the last
	// epoch, measured only when Options.WallClock is injected. Written
	// by the worker stepping this shard, read at the barrier — never
	// shared mid-epoch.
	wallNS int64
}

// addUnit takes ownership of u, keeping order sorted.
func (s *shard) addUnit(u *Unit) {
	s.units[u.ID] = u
	i := sort.Search(len(s.order), func(i int) bool { return s.order[i] >= u.ID })
	s.order = append(s.order, 0)
	copy(s.order[i+1:], s.order[i:])
	s.order[i] = u.ID
}

// removeUnit releases ownership of id.
func (s *shard) removeUnit(id uint32) {
	delete(s.units, id)
	i := sort.Search(len(s.order), func(i int) bool { return s.order[i] >= id })
	if i < len(s.order) && s.order[i] == id {
		s.order = append(s.order[:i], s.order[i+1:]...)
	}
}

// step advances the shard kernel one epoch: a single tick event at
// the epoch start processes the global air, moves the owned units and
// emits their frames. Called from the engine worker pool; shards
// share nothing mid-epoch.
func (s *shard) step(start, end sim.Time) uint64 {
	s.k.At(start, "world.epoch", func() { s.tick(int64(start), int64(end)) })
	// Run to just short of the next epoch boundary so the next
	// epoch's tick fires in the next step call, not this one.
	if err := s.k.Run(end - 1); err != nil {
		panic(err) // kernel Stop is never used by the world
	}
	return s.k.EventsFired()
}

// tick is the per-epoch unit update. It runs on the shard kernel
// goroutine and must only touch shard-owned state and the immutable
// w.air slice.
func (s *shard) tick(nowNS, endNS int64) {
	w := s.w
	// Phase 1 — reception: every frame on the air last epoch, against
	// every owned unit in ID order. Frame order is globally canonical
	// (sorted at the barrier), so each receiving unit consumes its
	// loss draws in the same order at any shard count.
	for fi := range w.air {
		f := &w.air[fi]
		for _, id := range s.order {
			u := s.units[id]
			if u.ID == f.Src {
				continue
			}
			d := w.ring.dist(u.PosM, f.PosM)
			if d > w.opts.RadioRangeM {
				continue
			}
			s.receive(u, f, d, nowNS)
		}
	}
	// Phase 2 — mobility and lifecycle initiative, in unit ID order.
	dt := float64(endNS-nowNS) / 1e9
	for _, id := range s.order {
		u := s.units[id]
		s.unitTicks++
		s.move(u, dt, nowNS)
		s.act(u, nowNS)
		// Beacons last: the CAM reflects this tick's state.
		if nowNS >= u.BeaconAtNS {
			s.sendBeacon(u, nowNS)
		}
	}
}

// receive runs one (frame, receiver) delivery attempt: deterministic
// propagation, jammer interference, a counter-keyed loss draw, then
// the protocol handler.
func (s *shard) receive(u *Unit, f *Frame, distM float64, nowNS int64) {
	near := s.w.nearJammer(u.PosM)
	if near {
		s.nearTx++
	} else {
		s.farTx++
	}
	signal := s.ch.MeanRxPowerDBm(s.w.opts.TxPowerDBm, distM)
	interference := phy.NoPower
	jammed := false
	if s.jam != nil && s.jam.OverlapsWindow(sim.Time(f.AtNS), sim.Time(f.AtNS)+s.airtime()) {
		jd := s.w.ring.dist(u.PosM, s.jam.Position)
		jp := s.ch.MeanRxPowerDBm(s.jam.PowerDBm, jd)
		interference = phy.AddDBm(interference, jp)
		jammed = true
	}
	sinr := phy.SINRdB(signal, interference, s.ch.Env.NoiseFloorDBm)
	per := phy.PER(sinr, s.w.opts.FrameBytes)
	if u.draw(s.w.opts.Seed) < per {
		s.lost++
		if jammed {
			s.jammed++
		}
		if s.w.spansOn && (f.Span != 0 || jammed) {
			var cause span.ID
			if jammed {
				cause = s.w.jamSpan
			}
			s.intents = append(s.intents, intent{
				atNS: nowNS, unit: u.ID, seq: u.nextIntent(),
				kind: "world.frame_loss", other: f.Src, value: sinr,
				parent: f.Span, cause: cause,
			})
		}
		return
	}
	s.delivered++
	if near {
		s.nearOK++
	} else {
		s.farOK++
	}
	switch f.Kind {
	case FrameBeacon:
		s.handleBeacon(u, f, nowNS)
	case FrameJoinReq:
		if f.Dst == u.ID {
			s.handleJoinReq(u, f, nowNS)
		}
	case FrameJoinResp:
		if f.Dst == u.ID {
			s.handleJoinResp(u, f)
		}
	}
}

// handleBeacon refreshes the receiver's nearest-platoon-ahead cache.
func (s *shard) handleBeacon(u *Unit, f *Frame, nowNS int64) {
	fwd := s.w.ring.forward(u.PosM, f.PosM)
	if fwd <= 0 || fwd > s.w.opts.RadioRangeM {
		return
	}
	if u.AheadID == f.Src || u.AheadAtNS < nowNS-int64(s.w.staleNS) || fwd < u.AheadDistM {
		u.AheadID = f.Src
		u.AheadSize = f.Size
		u.AheadDistM = fwd
		u.AheadSpeedMS = f.SpeedMS
		u.AheadAtNS = nowNS
	}
}

// handleJoinReq is the leader-side admission decision. Accepts turn
// into manager proposals applied at the barrier; denials emit the
// join_denied intent and thread its span into the deny response —
// the same one-shot cause threading the platoon layer uses.
func (s *shard) handleJoinReq(u *Unit, f *Frame, nowNS int64) {
	if u.Ghost {
		return
	}
	if u.Size() >= s.w.opts.MaxPlatoonSize {
		s.denials++
		seq := u.nextIntent()
		if s.w.spansOn {
			s.intents = append(s.intents, intent{
				atNS: nowNS, unit: u.ID, seq: seq,
				kind: "world.join_denied", other: f.Src, parent: f.Span,
			})
		}
		s.send(u, txFrame{
			Frame:    Frame{Kind: FrameJoinResp, Dst: f.Src, Accept: false},
			causeRef: uint64(u.ID)<<32 | seq&0xffffffff,
		}, nowNS)
		return
	}
	kind := propJoin
	if f.SrcVeh >= ghostVehBase {
		kind = propAdmitGhost
	}
	s.proposals = append(s.proposals, proposal{
		atNS: nowNS, kind: kind, unit: u.ID, seq: u.nextIntent(),
		other: f.Src, cause: f.Span,
	})
	s.send(u, txFrame{
		Frame: Frame{Kind: FrameJoinResp, Dst: f.Src, Accept: true},
		cause: f.Span,
	}, nowNS)
}

// handleJoinResp settles the requester side. Accepted real joiners
// were already absorbed at the barrier (the unit is gone, so the
// frame finds no receiver); what arrives here is denials and ghost
// bookkeeping.
func (s *shard) handleJoinResp(u *Unit, f *Frame) {
	if f.Src != u.PendingJoin {
		return
	}
	if !f.Accept {
		u.PendingJoin = 0
		u.Avoid = f.Src
	}
	// Accepted ghosts were admitted at the barrier; nothing to do.
}

// move integrates mobility: speed relaxation, position advance,
// min-gap restore decay, junction crossings.
func (s *shard) move(u *Unit, dt float64, nowNS int64) {
	o := &s.w.opts
	dv := u.TargetMS - u.SpeedMS
	if max := o.MaxAccelMS2 * dt; dv > max {
		dv = max
	} else if dv < -max {
		dv = -max
	}
	u.SpeedMS += dv
	oldPos := u.PosM
	u.PosM = s.w.ring.wrap(u.PosM + u.SpeedMS*dt)
	if u.ExtraGapM > 0 {
		u.ExtraGapM -= o.GapCloseMS * dt
		if u.ExtraGapM <= 0 {
			u.ExtraGapM = 0
			s.gapRestores++
			s.intents = append(s.intents, intent{
				atNS: nowNS, unit: u.ID, seq: u.nextIntent(), kind: "world.gap_restored",
			})
		}
	}
	if u.Ghost {
		return
	}
	if j := s.w.ring.crossedJunction(oldPos, u.PosM); j >= 0 {
		s.proposals = append(s.proposals, proposal{
			atNS: nowNS, kind: propJunction, unit: u.ID, seq: u.nextIntent(), other: uint32(j),
		})
		if len(u.Members) > 0 && u.draw(o.Seed) < o.JunctionExitProb {
			// A tail slice takes the exit: the draw picks the split
			// index; a split at the last index is a single leaver.
			idx := 1 + int(u.draw(o.Seed)*float64(len(u.Members)))
			if idx > len(u.Members) {
				idx = len(u.Members)
			}
			kind := propSplit
			if idx == len(u.Members) {
				kind = propLeave
			}
			s.proposals = append(s.proposals, proposal{
				atNS: nowNS, kind: kind, unit: u.ID, seq: u.nextIntent(),
				idx:      idx - 1,
				targetMS: o.CruiseMS * (0.85 + 0.1*u.draw(o.Seed)),
			})
		}
	}
	// Keep station behind a close platoon ahead; otherwise chase the
	// cruise target.
	if u.AheadAtNS != 0 && nowNS-u.AheadAtNS <= int64(s.w.staleNS) {
		clear := u.AheadDistM - u.LengthM(o.VehicleLenM)
		if clear < o.SafeGapM {
			u.TargetMS = u.AheadSpeedMS
			return
		}
	}
	u.TargetMS = s.w.cruiseFor(u)
}

// act drives lifecycle initiative: free vehicles and ghosts chase
// admission; platoon leaders propose merges.
func (s *shard) act(u *Unit, nowNS int64) {
	o := &s.w.opts
	if u.PendingJoin != 0 && nowNS-u.PendingAtNS > int64(s.w.joinTimeoutNS) {
		u.PendingJoin = 0 // request or response lost on the air
	}
	if nowNS < u.NextActAtNS {
		return
	}
	stale := u.AheadAtNS == 0 || nowNS-u.AheadAtNS > int64(s.w.staleNS)
	switch {
	case u.Ghost && u.HostID == 0:
		if stale || u.PendingJoin != 0 || u.AheadID == u.Avoid {
			return
		}
		s.requestJoin(u, nowNS, s.w.attackSpanFor(u))
	case !u.Ghost && len(u.Members) == 0:
		// Free vehicle: ask the platoon ahead for admission.
		if stale || u.PendingJoin != 0 || u.AheadDistM > o.JoinRangeM || u.AheadSize == 0 {
			return
		}
		s.requestJoin(u, nowNS, u.LastSpan)
	case !u.Ghost && len(u.Members) > 0:
		// Platoon leader: propose merging into a close, similarly
		// paced platoon ahead when the combined roster fits.
		if stale || u.AheadSize == 0 {
			return
		}
		clear := u.AheadDistM - u.LengthM(o.VehicleLenM)
		if clear > o.MergeGapM || clear < 0 {
			return
		}
		if u.Size()+int(u.AheadSize) > o.MaxPlatoonSize {
			return
		}
		if diff := u.SpeedMS - u.AheadSpeedMS; diff > 3 || diff < -3 {
			return
		}
		s.proposals = append(s.proposals, proposal{
			atNS: nowNS, kind: propMerge, unit: u.AheadID, seq: u.nextIntent(), other: u.ID,
		})
		u.NextActAtNS = nowNS + int64(s.w.actCooldownNS)
	}
}

// requestJoin transmits a join request to the platoon ahead.
func (s *shard) requestJoin(u *Unit, nowNS int64, cause span.ID) {
	u.PendingJoin = u.AheadID
	u.PendingAtNS = nowNS
	u.NextActAtNS = nowNS + int64(s.w.actCooldownNS)
	s.send(u, txFrame{
		Frame: Frame{Kind: FrameJoinReq, Dst: u.AheadID},
		cause: cause,
	}, nowNS)
}

// sendBeacon transmits the unit's periodic CAM and schedules the
// next one with a counter-keyed jitter.
func (s *shard) sendBeacon(u *Unit, nowNS int64) {
	s.send(u, txFrame{Frame: Frame{Kind: FrameBeacon}}, nowNS)
	period := int64(s.w.beaconPeriodNS)
	jitter := int64((u.draw(s.w.opts.Seed) - 0.5) * float64(period) / 10)
	u.BeaconAtNS = nowNS + period + jitter
}

// send stamps the frame with the unit's identity and state and queues
// it for the barrier.
func (s *shard) send(u *Unit, tx txFrame, nowNS int64) {
	tx.Src = u.ID
	tx.SrcVeh = u.LeaderVeh
	tx.Seq = u.nextSeq()
	tx.AtNS = nowNS
	tx.PosM = u.PosM
	tx.SpeedMS = u.SpeedMS
	tx.Frame.Size = uint16(u.Size())
	if u.Ghost {
		tx.Frame.Size = 1
	}
	s.outbox = append(s.outbox, tx)
	s.airtimeNS += int64(s.airtime())
}

// airtime returns one world frame's airtime at the shard's MAC
// bitrate.
func (s *shard) airtime() sim.Time {
	return phy.AirtimeNS(s.w.opts.FrameBytes, s.cfg.Bitrate)
}
