package world

import "platoonsec/internal/obs/span"

// Unit is one road entity: a platoon (leader plus members), a free
// vehicle seeking admission (a platoon of one), or a Sybil ghost
// identity. Everything a unit will ever do — mobility, beacon timing,
// loss draws, lifecycle choices — is a pure function of the exported
// state below plus the world seed, which is why the cross-shard
// handoff codec can move a unit between kernels without changing any
// future observable.
type Unit struct {
	// ID is the unit (platoon) identifier, allocated monotonically by
	// the manager and never reused.
	ID uint32
	// LeaderVeh is the leader's vehicle identity.
	LeaderVeh uint32
	// Members are the member vehicle identities behind the leader,
	// front to back. A free vehicle has none.
	Members []uint32
	// Ghost marks a Sybil pseudo-vehicle: it transmits and joins like
	// a free vehicle but is never counted as a real roster vehicle.
	Ghost bool
	// HostID is the platoon a ghost is currently admitted to (0 =
	// none).
	HostID uint32
	// Avoid is the platoon that last ejected this ghost; the ghost
	// hops to a different one.
	Avoid uint32
	// Hops counts ghost re-admissions after an ejection — the
	// cross-platoon Sybil-hop observable.
	Hops uint32

	// PosM is the leader's ring coordinate; SpeedMS its speed;
	// TargetMS the speed it relaxes toward.
	PosM     float64
	SpeedMS  float64
	TargetMS float64
	// GapM is the desired intra-platoon spacing; ExtraGapM is the
	// transient surplus opened by a merge or join, decaying to zero
	// (the min-gap restore phase).
	GapM      float64
	ExtraGapM float64

	// AdmittedAtNS is when a ghost was admitted to HostID.
	AdmittedAtNS int64
	// LastSpan is the most recent lifecycle span affecting this unit,
	// threaded as the causal parent of its next lifecycle action so
	// hop chains (ejected from A → joined B) stay connected.
	LastSpan span.ID

	// Seq numbers this unit's transmitted frames; Draws counts dice
	// draws; IntentSeq orders this unit's barrier intents. All three
	// advance in the unit's own canonical order, independent of
	// sharding.
	Seq       uint32
	Draws     uint64
	IntentSeq uint64

	// BeaconAtNS is the next beacon time; NextActAtNS throttles
	// lifecycle initiatives (join retries, merge proposals).
	BeaconAtNS  int64
	NextActAtNS int64

	// PendingJoin is the unit we have an unanswered join request with
	// (0 = none); PendingAtNS is when it was sent.
	PendingJoin uint32
	PendingAtNS int64

	// Ahead caches the nearest platoon heard beaconing ahead: who,
	// how big, how far, how fast, and when we heard it. Refreshed by
	// beacons; part of the handoff record so a migration cannot blind
	// a unit that a same-shard neighbour would still see.
	AheadID      uint32
	AheadSize    uint16
	AheadDistM   float64
	AheadSpeedMS float64
	AheadAtNS    int64
}

// Size returns the number of vehicle identities the unit carries
// (leader plus members; 1 for free vehicles and ghosts).
func (u *Unit) Size() int { return 1 + len(u.Members) }

// LengthM returns the unit's physical extent from leader front to
// tail rear.
func (u *Unit) LengthM(vehLenM float64) float64 {
	n := float64(u.Size())
	return n*vehLenM + (n-1)*(u.GapM+u.ExtraGapM)
}

// draw consumes one counter-keyed dice draw.
func (u *Unit) draw(seed int64) float64 {
	u.Draws++
	return dice(seed, u.ID, u.Draws)
}

// nextSeq numbers the unit's next transmitted frame.
func (u *Unit) nextSeq() uint32 {
	u.Seq++
	return u.Seq
}

// nextIntent orders the unit's next barrier intent.
func (u *Unit) nextIntent() uint64 {
	u.IntentSeq++
	return u.IntentSeq
}
