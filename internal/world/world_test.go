package world

import (
	"bytes"
	"strings"
	"testing"

	"platoonsec/internal/sim"
)

// small returns a quick world config for behavioural tests.
func small() Options {
	o := DefaultOptions()
	o.Duration = 30 * sim.Second
	o.Platoons = 12
	o.VehiclesPerPlatoon = 5
	o.FreeAgents = 8
	o.Shards = 2
	o.Workers = 2
	return o
}

// TestRunBaseline checks the baseline world produces a live frame
// economy and conserves the vehicle population, with roster
// invariants holding at every barrier.
func TestRunBaseline(t *testing.T) {
	o := small()
	o.normalize()
	if err := o.validate(); err != nil {
		t.Fatal(err)
	}
	w := build(o)
	wantVeh := o.Platoons*o.VehiclesPerPlatoon + o.FreeAgents
	if got := w.mgr.Vehicles(); got != wantVeh {
		t.Fatalf("built %d vehicles, want %d", got, wantVeh)
	}
	if err := w.run(w.mgr.CheckInvariants); err != nil {
		t.Fatal(err)
	}
	r := w.finalize()
	if r.Vehicles != wantVeh {
		t.Errorf("vehicle population drifted: %d, want %d", r.Vehicles, wantVeh)
	}
	if r.FramesTx == 0 || r.Delivered == 0 {
		t.Errorf("dead air: framesTx=%d delivered=%d", r.FramesTx, r.Delivered)
	}
	if r.PDR <= 0 || r.PDR > 1 {
		t.Errorf("PDR %v out of range", r.PDR)
	}
	if r.Jammed != 0 {
		t.Errorf("baseline counted %d jammed receptions", r.Jammed)
	}
	if r.Ghosts != 0 || r.Lifecycle.GhostAdmissions != 0 {
		t.Errorf("baseline grew ghosts: %d (%d admissions)", r.Ghosts, r.Lifecycle.GhostAdmissions)
	}
	if r.Epochs != uint64(o.Duration/o.Epoch) {
		t.Errorf("ran %d epochs, want %d", r.Epochs, o.Duration/o.Epoch)
	}
	if !strings.Contains(r.String(), "world attack=baseline") {
		t.Errorf("String() missing header:\n%s", r.String())
	}
}

// TestRunLifecycleActivity checks the lifecycle layer actually moves:
// junction crossings fire, and join traffic exists (admissions or
// denials) over a longer horizon.
func TestRunLifecycleActivity(t *testing.T) {
	o := small()
	o.Duration = 120 * sim.Second
	r, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	c := r.Lifecycle
	if c.JunctionCrossings == 0 {
		t.Error("no junction crossings in 120s")
	}
	if c.Leaves+c.Splits == 0 {
		t.Error("no junction exits in 120s")
	}
	if c.Joins+c.JoinDenials+c.Merges == 0 {
		t.Error("no admission traffic in 120s")
	}
	if r.Migrations == 0 {
		t.Error("no cross-shard migrations with 2 shards in 120s")
	}
}

// TestRunJamming checks the interchange jammer degrades near-junction
// delivery relative to baseline and attributes losses to the attack.
func TestRunJamming(t *testing.T) {
	o := small()
	base, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	o.AttackKey = "jamming"
	o.Spans = true
	jam, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if jam.Jammed == 0 {
		t.Fatal("jamming run counted zero jammed receptions")
	}
	if jam.NearPDR >= base.NearPDR {
		t.Errorf("near-junction PDR did not degrade: base %.3f, jammed %.3f", base.NearPDR, jam.NearPDR)
	}
	if jam.Spans == nil || jam.Forensics == nil {
		t.Fatal("spans enabled but Result.Spans/Forensics nil")
	}
	found := false
	for _, e := range jam.Forensics.Effects {
		if e.Kind == "world.frame_loss" && e.Attributed > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("forensics did not attribute any frame loss to the attack: %+v", jam.Forensics.Effects)
	}
}

// TestRunSybil checks ghosts infiltrate, are ejected by the audit,
// and hop between platoons, with the chain visible in forensics.
func TestRunSybil(t *testing.T) {
	o := small()
	o.Duration = 120 * sim.Second
	o.AttackKey = "sybil"
	o.Spans = true
	r, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ghosts == 0 {
		t.Fatal("sybil run has no ghosts on the road")
	}
	c := r.Lifecycle
	if c.GhostAdmissions == 0 {
		t.Error("no ghost was admitted in 120s")
	}
	if c.GhostEjections == 0 {
		t.Error("no ghost was ejected in 120s")
	}
	if c.GhostHops == 0 {
		t.Error("no ghost hopped to a second platoon in 120s")
	}
	if r.Vehicles != o.Platoons*o.VehiclesPerPlatoon+o.FreeAgents {
		t.Errorf("ghosts perturbed the real vehicle count: %d", r.Vehicles)
	}
	found := false
	for _, e := range r.Forensics.Effects {
		if e.Kind == "world.roster_add" && e.Attributed > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("forensics did not attribute any roster_add to the attack: %+v", r.Forensics.Effects)
	}
}

// TestRunEventStream checks the JSONL stream is written and starts
// with the creation records.
func TestRunEventStream(t *testing.T) {
	o := small()
	o.Duration = 10 * sim.Second
	var buf bytes.Buffer
	o.EventsJSONL = &buf
	if _, err := Run(o); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < o.Platoons+o.FreeAgents {
		t.Fatalf("only %d event lines", len(lines))
	}
	if !strings.Contains(lines[0], `"kind":"world.create"`) {
		t.Errorf("first event is not world.create: %s", lines[0])
	}
}

// TestOptionsValidate pins the validation errors.
func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Options)
	}{
		{"no platoons", func(o *Options) { o.Platoons = 0 }},
		{"no vehicles", func(o *Options) { o.VehiclesPerPlatoon = 0 }},
		{"negative free agents", func(o *Options) { o.FreeAgents = -1 }},
		{"no shards", func(o *Options) { o.Shards = 0 }},
		{"short duration", func(o *Options) { o.Duration = sim.Millisecond }},
		{"unknown attack", func(o *Options) { o.AttackKey = "nope" }},
		{"unmodelled attack", func(o *Options) { o.AttackKey = "replay" }},
	}
	for _, tc := range cases {
		o := DefaultOptions()
		tc.mut(&o)
		if _, err := Run(o); err == nil {
			t.Errorf("%s: Run accepted invalid options", tc.name)
		}
	}
}
