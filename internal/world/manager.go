package world

// PlatoonManager is the lifecycle layer over the unit population:
// create, join, leave, split, merge, junction crossing and min-gap
// restore, modelled on the platoon-manager idiom in SNIPPETS.md
// (create_platoon/clear_platoon topology bookkeeping, junction
// last-members tracking, ex-member min-gap restore). Mutations are
// only applied here, at epoch barriers, in canonical proposal order —
// shards propose, the manager disposes — so the roster state is a
// pure function of the proposal sequence regardless of sharding.
//
// The manager is plain single-goroutine data structure code; it holds
// no locks and runs only on the coordinator goroutine.

import (
	"fmt"
	"sort"
)

// LifecycleCounters tallies every manager-applied mutation. All
// fields are invariant across shard and worker counts.
type LifecycleCounters struct {
	Created           uint64
	Joins             uint64
	JoinDenials       uint64
	Leaves            uint64
	Splits            uint64
	Merges            uint64
	JunctionCrossings uint64
	GapRestores       uint64
	GhostAdmissions   uint64
	GhostEjections    uint64
	GhostHops         uint64
	RejectedProposals uint64
}

// Manager owns the unit population and enforces the roster
// invariants.
type Manager struct {
	units  map[uint32]*Unit
	order  []uint32 // sorted unit IDs
	nextID uint32
	// vehicles is the real (non-ghost) vehicle population, fixed at
	// build time; conservation is an invariant.
	vehicles int
	vehLenM  float64
	maxSize  int
	C        LifecycleCounters
}

// NewManager builds an empty manager. maxSize bounds platoon rosters;
// vehLenM is the physical vehicle length used for unit extents.
func NewManager(maxSize int, vehLenM float64) *Manager {
	return &Manager{
		units:   make(map[uint32]*Unit),
		maxSize: maxSize,
		vehLenM: vehLenM,
	}
}

// Get returns the unit with the given ID, or nil.
func (m *Manager) Get(id uint32) *Unit { return m.units[id] }

// Order returns the sorted unit IDs (shared slice; do not mutate).
func (m *Manager) Order() []uint32 { return m.order }

// Len returns the unit count.
func (m *Manager) Len() int { return len(m.units) }

// Vehicles returns the real vehicle population.
func (m *Manager) Vehicles() int { return m.vehicles }

// insert adds u to the population keeping order sorted.
func (m *Manager) insert(u *Unit) {
	m.units[u.ID] = u
	i := sort.Search(len(m.order), func(i int) bool { return m.order[i] >= u.ID })
	m.order = append(m.order, 0)
	copy(m.order[i+1:], m.order[i:])
	m.order[i] = u.ID
}

// remove drops id from the population.
func (m *Manager) remove(id uint32) {
	delete(m.units, id)
	i := sort.Search(len(m.order), func(i int) bool { return m.order[i] >= id })
	if i < len(m.order) && m.order[i] == id {
		m.order = append(m.order[:i], m.order[i+1:]...)
	}
}

// allocID returns the next unit ID. IDs are allocated only on the
// coordinator goroutine, in canonical proposal order, so they are
// identical at any shard count.
func (m *Manager) allocID() uint32 {
	m.nextID++
	return m.nextID
}

// Create materializes a new unit (platoon, free vehicle, or ghost)
// and registers its vehicles. Ghosts never count toward the vehicle
// population.
func (m *Manager) Create(u Unit) *Unit {
	u.ID = m.allocID()
	nu := u
	m.insert(&nu)
	if !nu.Ghost {
		m.vehicles += nu.Size()
	}
	m.C.Created++
	return &nu
}

// Join absorbs the free unit joiner into host: the joiner's vehicle
// becomes host's tail member and the joiner unit disappears. The
// host opens ExtraGapM for the newcomer (restored over time).
func (m *Manager) Join(joinerID, hostID uint32) error {
	j, h := m.units[joinerID], m.units[hostID]
	if j == nil || h == nil {
		return fmt.Errorf("world: join %d→%d: unit gone", joinerID, hostID)
	}
	if j.Ghost {
		return fmt.Errorf("world: join %d→%d: ghosts use AdmitGhost", joinerID, hostID)
	}
	if len(j.Members) != 0 {
		return fmt.Errorf("world: join %d→%d: joiner is a platoon (size %d); use Merge", joinerID, hostID, j.Size())
	}
	if h.Size() >= m.maxSize {
		return fmt.Errorf("world: join %d→%d: host full (%d)", joinerID, hostID, h.Size())
	}
	h.Members = append(h.Members, j.LeaderVeh)
	h.ExtraGapM += j.GapM
	m.rehost(j.ID, h.ID)
	m.remove(j.ID)
	m.C.Joins++
	return nil
}

// rehost moves any ghost shadowing oldHost onto newHost, so a unit
// absorbed by join or merge never leaves dangling host references —
// the ghost rides along into the absorbing platoon.
func (m *Manager) rehost(oldHost, newHost uint32) {
	for _, id := range m.order {
		if g := m.units[id]; g.Ghost && g.HostID == oldHost {
			g.HostID = newHost
		}
	}
}

// Leave detaches host's tail member as a new free unit and returns
// it.
func (m *Manager) Leave(hostID uint32) (*Unit, error) {
	h := m.units[hostID]
	if h == nil {
		return nil, fmt.Errorf("world: leave %d: unit gone", hostID)
	}
	if len(h.Members) == 0 {
		return nil, fmt.Errorf("world: leave %d: no members", hostID)
	}
	veh := h.Members[len(h.Members)-1]
	tailPos := h.PosM - h.LengthM(m.vehLenM)
	h.Members = h.Members[:len(h.Members)-1]
	nu := &Unit{
		ID:        m.allocID(),
		LeaderVeh: veh,
		PosM:      tailPos,
		SpeedMS:   h.SpeedMS,
		TargetMS:  h.TargetMS,
		GapM:      h.GapM,
	}
	m.insert(nu)
	m.C.Leaves++
	return nu, nil
}

// Split detaches host's members from index idx onward as a new unit
// led by Members[idx], and returns it.
func (m *Manager) Split(hostID uint32, idx int) (*Unit, error) {
	h := m.units[hostID]
	if h == nil {
		return nil, fmt.Errorf("world: split %d: unit gone", hostID)
	}
	if idx < 0 || idx >= len(h.Members) {
		return nil, fmt.Errorf("world: split %d at %d: have %d members", hostID, idx, len(h.Members))
	}
	perVeh := m.vehLenM + h.GapM + h.ExtraGapM
	headPos := h.PosM - float64(idx+1)*perVeh
	tail := h.Members[idx:]
	nu := &Unit{
		ID:        m.allocID(),
		LeaderVeh: tail[0],
		Members:   append([]uint32(nil), tail[1:]...),
		PosM:      headPos,
		SpeedMS:   h.SpeedMS,
		TargetMS:  h.TargetMS,
		GapM:      h.GapM,
		ExtraGapM: h.ExtraGapM,
	}
	h.Members = h.Members[:idx]
	m.insert(nu)
	m.C.Splits++
	return nu, nil
}

// Merge absorbs the rear platoon into the front one: rear's leader
// and members append to front's roster, and front opens ExtraGapM to
// be restored as the absorbed tail closes up.
func (m *Manager) Merge(frontID, rearID uint32) error {
	f, r := m.units[frontID], m.units[rearID]
	if f == nil || r == nil {
		return fmt.Errorf("world: merge %d+%d: unit gone", frontID, rearID)
	}
	if f.Ghost || r.Ghost {
		return fmt.Errorf("world: merge %d+%d: ghosts cannot merge", frontID, rearID)
	}
	if frontID == rearID {
		return fmt.Errorf("world: merge %d with itself", frontID)
	}
	if f.Size()+r.Size() > m.maxSize {
		return fmt.Errorf("world: merge %d+%d: combined size %d exceeds %d", frontID, rearID, f.Size()+r.Size(), m.maxSize)
	}
	f.Members = append(f.Members, r.LeaderVeh)
	f.Members = append(f.Members, r.Members...)
	f.ExtraGapM += r.GapM
	m.rehost(r.ID, f.ID)
	m.remove(r.ID)
	m.C.Merges++
	return nil
}

// AdmitGhost records a ghost's admission into host. The ghost unit
// persists (it is an identity, not a vehicle) and shadows its host.
func (m *Manager) AdmitGhost(ghostID, hostID uint32, atNS int64) error {
	g, h := m.units[ghostID], m.units[hostID]
	if g == nil || h == nil {
		return fmt.Errorf("world: admit ghost %d→%d: unit gone", ghostID, hostID)
	}
	if !g.Ghost {
		return fmt.Errorf("world: admit ghost %d→%d: not a ghost", ghostID, hostID)
	}
	if g.HostID != 0 {
		return fmt.Errorf("world: admit ghost %d→%d: already hosted by %d", ghostID, hostID, g.HostID)
	}
	g.HostID = hostID
	g.AdmittedAtNS = atNS
	g.PendingJoin = 0
	m.C.GhostAdmissions++
	if g.Avoid != 0 {
		g.Hops++
		m.C.GhostHops++
	}
	return nil
}

// EjectGhost records a host auditing out its ghost member; the ghost
// remembers the ejector and hops elsewhere.
func (m *Manager) EjectGhost(ghostID uint32) error {
	g := m.units[ghostID]
	if g == nil {
		return fmt.Errorf("world: eject ghost %d: unit gone", ghostID)
	}
	if !g.Ghost || g.HostID == 0 {
		return fmt.Errorf("world: eject ghost %d: not hosted", ghostID)
	}
	g.Avoid = g.HostID
	g.HostID = 0
	g.AdmittedAtNS = 0
	m.C.GhostEjections++
	return nil
}

// CheckInvariants verifies the roster algebra: every real vehicle in
// exactly one unit, no duplicate identities, population conserved,
// ghost host references valid, order index consistent. It is O(total
// vehicles) and intended for tests and debug builds.
func (m *Manager) CheckInvariants() error {
	if len(m.order) != len(m.units) {
		return fmt.Errorf("world: order has %d ids, units map %d", len(m.order), len(m.units))
	}
	seen := make(map[uint32]uint32, m.vehicles)
	count := 0
	var prev uint32
	for i, id := range m.order {
		if i > 0 && id <= prev {
			return fmt.Errorf("world: order not strictly sorted at %d", i)
		}
		prev = id
		u := m.units[id]
		if u == nil {
			return fmt.Errorf("world: order lists unknown unit %d", id)
		}
		if u.ID != id {
			return fmt.Errorf("world: unit %d registered under %d", u.ID, id)
		}
		if u.Ghost {
			if len(u.Members) != 0 {
				return fmt.Errorf("world: ghost %d has members", id)
			}
			if u.HostID != 0 && m.units[u.HostID] == nil {
				return fmt.Errorf("world: ghost %d hosted by unknown unit %d", id, u.HostID)
			}
			continue
		}
		if u.Size() > m.maxSize {
			return fmt.Errorf("world: unit %d size %d exceeds max %d", id, u.Size(), m.maxSize)
		}
		if owner, dup := seen[u.LeaderVeh]; dup {
			return fmt.Errorf("world: vehicle %d leads unit %d but already appears in unit %d", u.LeaderVeh, id, owner)
		}
		seen[u.LeaderVeh] = id
		count++
		for _, v := range u.Members {
			if v == u.LeaderVeh {
				return fmt.Errorf("world: unit %d lists its leader %d as member", id, v)
			}
			if owner, dup := seen[v]; dup {
				return fmt.Errorf("world: vehicle %d in unit %d already appears in unit %d", v, id, owner)
			}
			seen[v] = id
			count++
		}
	}
	if count != m.vehicles {
		return fmt.Errorf("world: vehicle count %d, expected %d (conservation violated)", count, m.vehicles)
	}
	return nil
}
