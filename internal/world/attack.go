package world

// The multi-platoon attack surface. Both attacks reuse the taxonomy's
// canonical keys, so the world rides on the existing attack registry
// and documentation without new rows:
//
//   - "jamming": a constant jammer parked at junction 0 (the
//     interchange) raises the interference term of every reception in
//     radio range — every platoon crossing the interchange degrades
//     at once (EXPERIMENTS.md E18).
//   - "sybil": ghost identities materialize near platoons and work
//     the join protocol. When a host leader's periodic audit ejects
//     one, it hops to the next platoon in range — the cross-platoon
//     identity chain the single-platoon scenarios cannot express.

import (
	"fmt"

	"platoonsec/internal/mac"
	"platoonsec/internal/obs"
	"platoonsec/internal/obs/span"
	"platoonsec/internal/sim"
	"platoonsec/internal/taxonomy"
)

// ghostVehBase namespaces Sybil ghost vehicle identities away from
// any real vehicle.
const ghostVehBase uint32 = 900_000_000

// validAttackKey reports whether the world models the given taxonomy
// attack.
func validAttackKey(key string) error {
	switch key {
	case "", "jamming", "sybil":
	default:
		if _, ok := taxonomy.AttackByKey(key); !ok {
			return fmt.Errorf("world: unknown attack key %q", key)
		}
		return fmt.Errorf("world: attack %q is not modelled at world scale (supported: jamming, sybil)", key)
	}
	return nil
}

// buildJammer returns the interchange jammer for the jamming attack.
func (w *World) buildJammer() *mac.Jammer {
	if w.opts.AttackKey != "jamming" {
		return nil
	}
	power := w.opts.JammerPowerDBm
	if power == 0 {
		power = 40
	}
	return &mac.Jammer{
		Position: w.ring.junctionPos(0),
		PowerDBm: power,
		Pattern:  mac.JamConstant,
		Start:    w.opts.AttackStart,
		Stop:     w.opts.Duration,
	}
}

// nearJammer classifies a position as inside the interchange's
// degradation zone (used for the E18 near/far PDR split; measured
// whether or not a jammer is present, so baselines compare).
func (w *World) nearJammer(posM float64) bool {
	return w.ring.dist(posM, w.ring.junctionPos(0)) <= w.opts.JamRadiusM
}

// arm activates the configured attack at the first barrier past
// AttackStart: records the attack-root span and, for sybil,
// materializes the ghost units spread around the ring.
func (w *World) arm(nowNS int64) {
	if w.armed || w.opts.AttackKey == "" || nowNS < int64(w.opts.AttackStart) {
		return
	}
	w.armed = true
	root := w.spanAdd(span.Span{
		AtNS:   int64(w.opts.AttackStart),
		Layer:  obs.LayerAttack,
		Kind:   "attack.arm",
		Attack: true,
		Detail: w.opts.AttackKey,
	})
	w.jamSpan = root
	w.event(int64(w.opts.AttackStart), "attack.arm", 0, 0, w.opts.AttackKey)
	switch w.opts.AttackKey {
	case "jamming":
		for _, s := range w.shards {
			if s.jam != nil {
				s.jam.Span = root
			}
		}
	case "sybil":
		n := w.opts.SybilGhosts
		if n <= 0 {
			n = 5
		}
		for i := 0; i < n; i++ {
			pos := w.ring.wrap(float64(i)*w.ring.lengthM/float64(n) + w.ring.lengthM/7)
			g := w.mgr.Create(Unit{
				LeaderVeh:  ghostVehBase + uint32(i),
				Ghost:      true,
				PosM:       pos,
				SpeedMS:    w.opts.CruiseMS,
				TargetMS:   w.opts.CruiseMS,
				GapM:       w.opts.GapM,
				LastSpan:   root,
				BeaconAtNS: nowNS,
			})
			w.assign(g)
			w.event(nowNS, "world.ghost_spawn", g.ID, 0, "")
		}
	}
}

// auditGhosts is the host-side detection pass, run at each barrier:
// a ghost that has shadowed its host longer than GhostTTL is flagged
// by the leader's plausibility audit and ejected, and hops on. This
// is the world-scale stand-in for the per-vehicle VPD-ADA detector.
func (w *World) auditGhosts(nowNS int64) {
	if w.opts.AttackKey != "sybil" || !w.armed {
		return
	}
	ttl := int64(w.ghostTTLNS)
	for _, id := range w.mgr.Order() {
		g := w.mgr.Get(id)
		if g == nil || !g.Ghost || g.HostID == 0 || nowNS-g.AdmittedAtNS < ttl {
			continue
		}
		host := g.HostID
		if err := w.mgr.EjectGhost(g.ID); err != nil {
			w.mgr.C.RejectedProposals++
			continue
		}
		g.LastSpan = w.spanAdd(span.Span{
			Parent:  g.LastSpan,
			AtNS:    nowNS,
			Layer:   obs.LayerScenario,
			Kind:    "world.ejected",
			Subject: g.LeaderVeh,
			Detail:  "ghost-audit",
		})
		w.event(nowNS, "world.ghost_eject", g.ID, host, "")
	}
}

// ghostTTL is how long a ghost survives inside a platoon before the
// audit catches it.
const ghostTTL = 8 * sim.Second

// attackSpanFor returns the causal anchor for a ghost's next protocol
// move: its LastSpan threads the hop chain (attack root → admission →
// ejection → next admission), so cross-platoon identity movement is
// attributable end-to-end.
func (w *World) attackSpanFor(u *Unit) span.ID { return u.LastSpan }
