// Package world is the multi-platoon highway substrate: a ring road
// spatially sharded into kernel regions, each shard running its own
// deterministic simulation stack, synchronised by a barrier epoch
// protocol that hands frames and migrating units across shard
// boundaries in canonical order. Results are byte-identical at any
// shard count and any engine worker count; DESIGN.md §10 states the
// contract and the construction that delivers it:
//
//   - every frame — intra- and cross-shard — travels through the
//     epoch exchange as codec bytes and is delivered in canonical
//     (tx time, sender, sequence) order the following epoch;
//   - all randomness is counter-keyed per unit (see dice), so a
//     unit's draws are a pure function of its own history, not of
//     which kernel hosts it or what shares that kernel;
//   - lifecycle mutations are proposed by shards and applied by the
//     PlatoonManager at the barrier in canonical proposal order;
//   - spans and JSONL events are recorded only on the coordinator
//     goroutine, in canonical order, so span IDs are stable.
//
// Shards execute in parallel on the experiment engine's worker pool;
// within an epoch they share nothing but the immutable previous-epoch
// air, so worker scheduling cannot reorder anything observable.
package world

import (
	"context"
	"fmt"
	"io"
	"sort"

	"platoonsec/internal/engine"
	"platoonsec/internal/mac"
	"platoonsec/internal/obs"
	"platoonsec/internal/obs/span"
	"platoonsec/internal/obs/timeline"
	"platoonsec/internal/phy"
	"platoonsec/internal/sim"
	"platoonsec/internal/trace"
)

// Options configures one world run.
type Options struct {
	// Seed drives every counter-keyed draw.
	Seed int64
	// Duration is the simulated time span; Epoch the barrier period.
	Duration sim.Time
	Epoch    sim.Time
	// Shards is the number of ring arcs, each with its own kernel
	// stack; Workers bounds the engine pool stepping them (<=0:
	// GOMAXPROCS). Neither changes any observable.
	Shards  int
	Workers int
	// Platoons and VehiclesPerPlatoon size the initial population;
	// FreeAgents adds unaffiliated vehicles that seek admission.
	Platoons           int
	VehiclesPerPlatoon int
	FreeAgents         int
	// RingLengthM is the road length (0 = auto-sized from the
	// population); Junctions the interchange count (0 = auto).
	RingLengthM float64
	Junctions   int
	// MaxPlatoonSize bounds rosters (0 = twice VehiclesPerPlatoon).
	MaxPlatoonSize int
	// Physical and protocol constants (zero = default).
	VehicleLenM      float64
	GapM             float64
	CruiseMS         float64
	MaxAccelMS2      float64
	GapCloseMS       float64
	SafeGapM         float64
	RadioRangeM      float64
	JoinRangeM       float64
	MergeGapM        float64
	JamRadiusM       float64
	TxPowerDBm       float64
	FrameBytes       int
	JunctionExitProb float64
	// AttackKey selects the attack ("", "jamming", "sybil");
	// AttackStart when it arms. JammerPowerDBm and SybilGhosts
	// override the attack defaults (0 = default).
	AttackKey      string
	AttackStart    sim.Time
	JammerPowerDBm float64
	SybilGhosts    int
	// Spans enables causal provenance (Result.Spans/Forensics);
	// SpanCapacity overrides the store bound.
	Spans        bool
	SpanCapacity int
	// EventsJSONL, when non-nil, receives the canonical lifecycle
	// event stream (byte-identical at any shard/worker count).
	EventsJSONL io.Writer
	// Timeline enables a per-epoch metrics timeline in the Result:
	// one sample per barrier, indexed by simulated end time, carrying
	// only partition-invariant counters (frames, deliveries, losses,
	// unit ticks — never migrations), so enabling it cannot change
	// any other observable. TimelineCapacity bounds the sample ring
	// (0 = timeline.DefaultCapacity).
	Timeline         bool
	TimelineCapacity int
	// WallClock, when non-nil, adds wall-timing gauges to each
	// timeline sample: epoch wall milliseconds and the slowest
	// shard's step milliseconds. Wall timings are inherently
	// nondeterministic, so WallClock must stay nil when timeline
	// bytes themselves must be reproducible; the rest of the Result
	// is unaffected either way.
	WallClock func() int64
}

// DefaultOptions returns a 40-platoon, 60-second world.
func DefaultOptions() Options {
	return Options{
		Seed:               1,
		Duration:           60 * sim.Second,
		Epoch:              100 * sim.Millisecond,
		Shards:             1,
		Platoons:           40,
		VehiclesPerPlatoon: 8,
		FreeAgents:         10,
		AttackStart:        10 * sim.Second,
	}
}

// normalize fills zero-valued knobs with defaults and derives the
// auto-sized geometry.
func (o *Options) normalize() {
	def := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	def(&o.VehicleLenM, 4.5)
	def(&o.GapM, 8)
	def(&o.CruiseMS, 30)
	def(&o.MaxAccelMS2, 2.5)
	def(&o.GapCloseMS, 1.0)
	def(&o.SafeGapM, 60)
	def(&o.RadioRangeM, 500)
	def(&o.JoinRangeM, 300)
	def(&o.MergeGapM, 150)
	def(&o.JamRadiusM, 1000)
	def(&o.TxPowerDBm, 23)
	def(&o.JunctionExitProb, 0.25)
	if o.FrameBytes == 0 {
		o.FrameBytes = 300
	}
	if o.Epoch == 0 {
		o.Epoch = 100 * sim.Millisecond
	}
	if o.MaxPlatoonSize == 0 {
		o.MaxPlatoonSize = 2 * o.VehiclesPerPlatoon
	}
	if o.RingLengthM == 0 {
		// Room for each platoon's physical extent plus headway to
		// keep initial density below saturation.
		perPlatoon := float64(o.VehiclesPerPlatoon)*(o.VehicleLenM+o.GapM) + 300
		o.RingLengthM = float64(o.Platoons) * perPlatoon
		if o.RingLengthM < 5000 {
			o.RingLengthM = 5000
		}
	}
	if o.Junctions == 0 {
		o.Junctions = o.Platoons / 10
		if o.Junctions < 4 {
			o.Junctions = 4
		}
	}
}

// validate rejects configurations the world cannot run.
func (o *Options) validate() error {
	if o.Platoons < 1 {
		return fmt.Errorf("world: need at least 1 platoon, got %d", o.Platoons)
	}
	if o.VehiclesPerPlatoon < 1 {
		return fmt.Errorf("world: need at least 1 vehicle per platoon, got %d", o.VehiclesPerPlatoon)
	}
	if o.FreeAgents < 0 {
		return fmt.Errorf("world: negative free agents %d", o.FreeAgents)
	}
	if o.Shards < 1 {
		return fmt.Errorf("world: need at least 1 shard, got %d", o.Shards)
	}
	if o.Epoch <= 0 || o.Duration < o.Epoch {
		return fmt.Errorf("world: duration %v must cover at least one epoch %v", o.Duration, o.Epoch)
	}
	if o.VehiclesPerPlatoon > MaxWireMembers {
		return fmt.Errorf("world: %d vehicles per platoon exceeds codec bound %d", o.VehiclesPerPlatoon, MaxWireMembers)
	}
	return validAttackKey(o.AttackKey)
}

// World is one run's state: the shard set, the lifecycle manager and
// the coordinator-side exchange buffers.
type World struct {
	opts   Options
	ring   ring
	mgr    *Manager
	shards []*shard
	owner  map[uint32]int // unit → owning shard index

	// air is the canonical frame list delivered during the current
	// epoch (immutable while shards run).
	air []Frame

	// Barrier scratch, reused across epochs.
	collect []txFrame
	intbuf  []intent
	propbuf []proposal
	encBuf  []byte

	spans   *span.Store
	spansOn bool
	armed   bool
	jamSpan span.ID

	events    *trace.JSONL
	eventsErr error

	beaconPeriodNS int64
	staleNS        int64
	joinTimeoutNS  int64
	actCooldownNS  int64
	ghostTTLNS     int64

	framesTx, delivered, lost, jammed uint64
	nearTx, nearOK, farTx, farOK      uint64
	unitTicks, epochs, migrations     uint64
	airtimeNS                         int64

	// Timeline recorder (nil unless Options.Timeline). The registry
	// instruments are nil-safe, so the disabled path costs nothing.
	tl            *timeline.Timeline
	tlReg         *obs.Registry
	tlFramesTx    *obs.Counter
	tlDelivered   *obs.Counter
	tlLost        *obs.Counter
	tlJammed      *obs.Counter
	tlUnitTicks   *obs.Counter
	tlUnits       *obs.Gauge
	tlEpochWallMS *obs.Gauge
	tlShardStepMS *obs.Gauge
}

// Run executes one world experiment, deterministic in Options alone
// (Shards and Workers excluded by construction).
func Run(o Options) (*Result, error) {
	o.normalize()
	if err := o.validate(); err != nil {
		return nil, err
	}
	w := build(o)
	if err := w.run(nil); err != nil {
		return nil, err
	}
	return w.finalize(), nil
}

// run drives the epoch loop. check, when non-nil, is called after
// every barrier (tests hang invariant checks there).
func (w *World) run(check func() error) error {
	o := &w.opts
	for start := sim.Time(0); start < o.Duration; start += o.Epoch {
		end := start + o.Epoch
		if end > o.Duration {
			end = o.Duration
		}
		var wallStart int64
		if o.WallClock != nil {
			wallStart = o.WallClock()
		}
		if err := w.runShards(start, end); err != nil {
			return err
		}
		if err := w.barrier(int64(end)); err != nil {
			return err
		}
		w.sampleTimeline(int64(end), wallStart)
		if check != nil {
			if err := check(); err != nil {
				return err
			}
		}
	}
	if w.eventsErr != nil {
		return fmt.Errorf("world: event stream: %w", w.eventsErr)
	}
	return nil
}

// build assembles the shard set and the initial population.
func build(o Options) *World {
	w := &World{
		opts:           o,
		ring:           ring{lengthM: o.RingLengthM, junctions: o.Junctions},
		mgr:            NewManager(o.MaxPlatoonSize, o.VehicleLenM),
		owner:          make(map[uint32]int),
		beaconPeriodNS: int64(sim.Second),
		staleNS:        int64(3 * sim.Second),
		joinTimeoutNS:  int64(3 * sim.Second),
		actCooldownNS:  int64(2 * sim.Second),
		ghostTTLNS:     int64(ghostTTL),
	}
	if o.Spans {
		w.spans = span.NewStore(o.SpanCapacity)
		w.spansOn = true
	}
	if o.EventsJSONL != nil {
		w.events = trace.NewJSONL(o.EventsJSONL)
	}
	if o.Timeline {
		w.tl = timeline.New(timeline.Config{Capacity: o.TimelineCapacity})
		w.tlReg = obs.NewRegistry()
		w.tlFramesTx = w.tlReg.Counter("world.frames_tx")
		w.tlDelivered = w.tlReg.Counter("world.delivered")
		w.tlLost = w.tlReg.Counter("world.lost")
		w.tlJammed = w.tlReg.Counter("world.jammed")
		w.tlUnitTicks = w.tlReg.Counter("world.unit_ticks")
		w.tlUnits = w.tlReg.Gauge("world.units")
		if o.WallClock != nil {
			w.tlEpochWallMS = w.tlReg.Gauge("world.epoch_wall_ms")
			w.tlShardStepMS = w.tlReg.Gauge("world.shard_step_ms_max")
		}
	}
	env := phy.DefaultEnvironment()
	env.RayleighFading = false // world propagation is deterministic math
	env.ShadowSigmaDB = 0      // (loss randomness is per-unit counter-keyed)
	for i := 0; i < o.Shards; i++ {
		k := sim.NewKernel(o.Seed)
		w.shards = append(w.shards, &shard{
			w:     w,
			idx:   i,
			k:     k,
			ch:    phy.NewChannel(env, k.Stream("phy")),
			cfg:   mac.DefaultConfig(),
			jam:   w.buildJammer(),
			units: make(map[uint32]*Unit),
		})
	}
	// Initial population: platoons evenly spaced, then free agents on
	// the half-offsets. Creation order fixes unit IDs and vehicle
	// identities.
	veh := uint32(0)
	nextVeh := func() uint32 { veh++; return veh }
	for i := 0; i < o.Platoons; i++ {
		u := Unit{
			LeaderVeh: nextVeh(),
			PosM:      w.ring.wrap(float64(i) * w.ring.lengthM / float64(o.Platoons)),
			GapM:      o.GapM,
		}
		if n := o.VehiclesPerPlatoon - 1; n > 0 {
			u.Members = make([]uint32, n)
			for j := range u.Members {
				u.Members[j] = nextVeh()
			}
		}
		w.place(&u)
	}
	for i := 0; i < o.FreeAgents; i++ {
		u := Unit{
			LeaderVeh: nextVeh(),
			PosM:      w.ring.wrap((float64(i) + 0.5) * w.ring.lengthM / float64(max(o.FreeAgents, 1))),
			GapM:      o.GapM,
		}
		w.place(&u)
	}
	return w
}

// place finalizes a new unit's derived state, registers it with the
// manager and assigns it to its home shard.
func (w *World) place(tmpl *Unit) *Unit {
	u := w.mgr.Create(*tmpl)
	u.SpeedMS = w.cruiseFor(u)
	u.TargetMS = u.SpeedMS
	// Stagger first beacons across the first period so the initial
	// epoch is not one synchronized burst.
	u.BeaconAtNS = int64(dice(w.opts.Seed, u.ID, tagBeacon) * float64(w.beaconPeriodNS))
	w.assign(u)
	w.event(0, "world.create", u.ID, uint32(u.Size()), "")
	return u
}

// Dice tags outside the per-unit draw counter range (draw() counts up
// from 1; these are fixed derived attributes).
const (
	tagCruise uint64 = 1<<63 + iota
	tagBeacon
)

// cruiseFor returns the unit's personal cruise speed: a fixed ±8%
// spread around the configured cruise, so free agents genuinely catch
// up with (and platoons drift apart from) one another.
func (w *World) cruiseFor(u *Unit) float64 {
	if u.Ghost {
		return w.opts.CruiseMS
	}
	return w.opts.CruiseMS * (0.92 + 0.16*dice(w.opts.Seed, u.ID, tagCruise))
}

// shardIdx maps a ring position to its home shard.
func (w *World) shardIdx(posM float64) int {
	i := int(posM / w.ring.lengthM * float64(len(w.shards)))
	if i < 0 {
		i = 0
	}
	if i >= len(w.shards) {
		i = len(w.shards) - 1
	}
	return i
}

// shardFor returns the home shard for a position.
func (w *World) shardFor(posM float64) *shard { return w.shards[w.shardIdx(posM)] }

// assign homes u on the shard owning its position.
func (w *World) assign(u *Unit) {
	i := w.shardIdx(u.PosM)
	w.shards[i].addUnit(u)
	w.owner[u.ID] = i
}

// unassign releases u from its owning shard.
func (w *World) unassign(id uint32) {
	if i, ok := w.owner[id]; ok {
		w.shards[i].removeUnit(id)
		delete(w.owner, id)
	}
}

// runShards steps every shard through [start, end) on the engine
// worker pool. Shards share nothing mid-epoch, so worker count and
// scheduling cannot change any observable.
func (w *World) runShards(start, end sim.Time) error {
	jobs := make([]engine.Job[uint64], len(w.shards))
	for i := range w.shards {
		s := w.shards[i]
		if wc := w.opts.WallClock; wc != nil {
			jobs[i] = func(context.Context) (uint64, error) {
				t0 := wc()
				n := s.step(start, end)
				s.wallNS = wc() - t0
				return n, nil
			}
		} else {
			jobs[i] = func(context.Context) (uint64, error) { return s.step(start, end), nil }
		}
	}
	rep := engine.Sweep(context.Background(), jobs, engine.Config[uint64]{
		Workers:        w.opts.Workers,
		DiscardResults: true,
	})
	if rep.Err != nil {
		return fmt.Errorf("world: shard step: %w", rep.Err)
	}
	return nil
}

// barrier is the coordinator phase between epochs: drain intents,
// collect and span frames, apply lifecycle proposals, arm attacks,
// fold shard counters, migrate units, and put the next epoch's
// frames on the air — all in canonical order on one goroutine.
func (w *World) barrier(endNS int64) error {
	w.epochs++

	// 1. Intents, in canonical (time, unit, seq) order. Span-worthy
	// intents record spans; their IDs resolve same-epoch causeRefs.
	intents := w.intbuf[:0]
	for _, s := range w.shards {
		intents = append(intents, s.intents...)
		s.intents = s.intents[:0]
	}
	sort.Slice(intents, func(i, j int) bool {
		a, b := &intents[i], &intents[j]
		if a.atNS != b.atNS {
			return a.atNS < b.atNS
		}
		if a.unit != b.unit {
			return a.unit < b.unit
		}
		return a.seq < b.seq
	})
	var refs map[uint64]span.ID
	for i := range intents {
		it := &intents[i]
		var id span.ID
		if w.spansOn && it.kind != "world.gap_restored" {
			id = w.spans.Add(span.Span{
				Parent:  it.parent,
				Cause:   it.cause,
				AtNS:    it.atNS,
				Layer:   obs.LayerScenario,
				Kind:    it.kind,
				Subject: it.unit,
				Value:   it.value,
			})
			if refs == nil {
				refs = make(map[uint64]span.ID, len(intents))
			}
			refs[uint64(it.unit)<<32|it.seq&0xffffffff] = id
		}
		if it.kind != "world.frame_loss" {
			w.event(it.atNS, it.kind, it.unit, it.other, "")
		}
	}
	w.intbuf = intents[:0]

	// 2. Frames, in canonical (time, sender, sequence) order.
	// Lifecycle frames get transmit spans, threading either a
	// concrete cause or a same-epoch intent reference (the one-shot
	// deny-span threading).
	frames := w.collect[:0]
	for _, s := range w.shards {
		frames = append(frames, s.outbox...)
		s.outbox = s.outbox[:0]
	}
	sort.Slice(frames, func(i, j int) bool {
		a, b := &frames[i], &frames[j]
		if a.AtNS != b.AtNS {
			return a.AtNS < b.AtNS
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Seq < b.Seq
	})
	w.framesTx += uint64(len(frames))
	w.tlFramesTx.Add(uint64(len(frames)))
	if w.spansOn {
		for i := range frames {
			f := &frames[i]
			if f.Kind == FrameBeacon {
				continue
			}
			parent := f.cause
			if parent == 0 && f.causeRef != 0 {
				parent = refs[f.causeRef]
			}
			f.Span = w.spans.Add(span.Span{
				Parent:  parent,
				AtNS:    f.AtNS,
				Layer:   obs.LayerScenario,
				Kind:    "world.tx",
				Subject: f.SrcVeh,
			})
		}
	}

	// 3. Lifecycle proposals, in canonical order, applied by the
	// manager.
	props := w.propbuf[:0]
	for _, s := range w.shards {
		props = append(props, s.proposals...)
		s.proposals = s.proposals[:0]
	}
	sort.Slice(props, func(i, j int) bool {
		a, b := &props[i], &props[j]
		if a.atNS != b.atNS {
			return a.atNS < b.atNS
		}
		if a.unit != b.unit {
			return a.unit < b.unit
		}
		if a.seq != b.seq {
			return a.seq < b.seq
		}
		if a.other != b.other {
			return a.other < b.other
		}
		return a.kind < b.kind
	})
	for i := range props {
		w.applyProposal(&props[i])
	}
	w.propbuf = props[:0]

	// 4. Attack lifecycle.
	w.arm(endNS)
	w.auditGhosts(endNS)

	// 5. Fold shard accounting into the invariant totals. The
	// timeline registry mirrors only the partition-invariant sums
	// (the per-shard split, and migrations, stay out of it).
	for _, s := range w.shards {
		w.tlDelivered.Add(s.delivered)
		w.tlLost.Add(s.lost)
		w.tlJammed.Add(s.jammed)
		w.tlUnitTicks.Add(s.unitTicks)
		w.delivered += s.delivered
		w.lost += s.lost
		w.jammed += s.jammed
		w.nearTx += s.nearTx
		w.nearOK += s.nearOK
		w.farTx += s.farTx
		w.farOK += s.farOK
		w.unitTicks += s.unitTicks
		w.airtimeNS += s.airtimeNS
		w.mgr.C.JoinDenials += s.denials
		w.mgr.C.GapRestores += s.gapRestores
		s.delivered, s.lost, s.jammed = 0, 0, 0
		s.nearTx, s.nearOK, s.farTx, s.farOK = 0, 0, 0, 0
		s.unitTicks, s.airtimeNS = 0, 0
		s.denials, s.gapRestores = 0, 0
	}

	// 6. Migrate units whose position left their shard's arc, in
	// unit-ID order, through the handoff codec.
	for _, id := range w.mgr.Order() {
		u := w.mgr.Get(id)
		cur, home := w.owner[id], w.shardIdx(u.PosM)
		if cur == home {
			continue
		}
		w.encBuf = u.AppendTo(w.encBuf[:0])
		if err := DecodeUnit(w.encBuf, u); err != nil {
			return fmt.Errorf("world: migrating unit %d: %w", id, err)
		}
		w.shards[cur].removeUnit(id)
		w.shards[home].addUnit(u)
		w.owner[id] = home
		w.migrations++
	}

	// 7. Put the epoch's frames on the air for next epoch's ticks,
	// through the same codec bytes a cross-shard hop would use.
	w.air = w.air[:0]
	for i := range frames {
		w.encBuf = frames[i].Frame.AppendTo(w.encBuf[:0])
		var f Frame
		if err := DecodeFrame(w.encBuf, &f); err != nil {
			return fmt.Errorf("world: routing frame from unit %d: %w", frames[i].Src, err)
		}
		w.air = append(w.air, f)
	}
	w.collect = frames[:0]
	return nil
}

// applyProposal validates and applies one lifecycle mutation.
// Failures (the counterpart vanished this epoch, capacity raced with
// an earlier canonical proposal) are counted, not fatal: the shards
// proposed against last epoch's state and the manager is the
// authority.
func (w *World) applyProposal(p *proposal) {
	m := w.mgr
	switch p.kind {
	case propJunction:
		m.C.JunctionCrossings++
		w.event(p.atNS, "world.junction", p.unit, p.other, "")
	case propJoin:
		joiner := m.Get(p.other)
		if joiner == nil {
			m.C.RejectedProposals++
			return
		}
		joinerVeh := joiner.LeaderVeh
		if err := m.Join(p.other, p.unit); err != nil {
			m.C.RejectedProposals++
			return
		}
		w.unassign(p.other)
		if host := m.Get(p.unit); host != nil {
			host.LastSpan = w.spanAdd(span.Span{
				Parent:  p.cause,
				AtNS:    p.atNS,
				Layer:   obs.LayerScenario,
				Kind:    "world.roster_add",
				Subject: joinerVeh,
			})
		}
		w.event(p.atNS, "world.join", p.unit, p.other, "")
	case propAdmitGhost:
		g := m.Get(p.other)
		if g == nil || m.AdmitGhost(p.other, p.unit, p.atNS) != nil {
			m.C.RejectedProposals++
			return
		}
		g.LastSpan = w.spanAdd(span.Span{
			Parent:  p.cause,
			AtNS:    p.atNS,
			Layer:   obs.LayerScenario,
			Kind:    "world.roster_add",
			Subject: g.LeaderVeh,
			Detail:  "ghost",
		})
		w.event(p.atNS, "world.ghost_admit", p.unit, p.other, "")
	case propMerge:
		if err := m.Merge(p.unit, p.other); err != nil {
			m.C.RejectedProposals++
			return
		}
		w.unassign(p.other)
		if front := m.Get(p.unit); front != nil {
			front.LastSpan = w.spanAdd(span.Span{
				Parent:  p.cause,
				AtNS:    p.atNS,
				Layer:   obs.LayerScenario,
				Kind:    "world.merge",
				Subject: p.unit,
			})
		}
		w.event(p.atNS, "world.merge", p.unit, p.other, "")
	case propSplit, propLeave:
		var nu *Unit
		var err error
		kind, ev := "world.split", "world.split"
		if p.kind == propLeave {
			nu, err = m.Leave(p.unit)
			kind, ev = "world.split", "world.leave"
		} else {
			nu, err = m.Split(p.unit, p.idx)
		}
		if err != nil {
			m.C.RejectedProposals++
			return
		}
		nu.PosM = w.ring.wrap(nu.PosM)
		nu.TargetMS = p.targetMS
		nu.BeaconAtNS = p.atNS
		nu.LastSpan = w.spanAdd(span.Span{
			AtNS:    p.atNS,
			Layer:   obs.LayerScenario,
			Kind:    kind,
			Subject: nu.ID,
		})
		w.assign(nu)
		w.event(p.atNS, ev, p.unit, nu.ID, "")
	}
}

// sampleTimeline records one per-epoch sample at the simulated end
// time (no-op unless Options.Timeline). Counter deltas were fed at
// the barrier; here the point-in-time gauges are refreshed — the unit
// population, and the wall timings when a WallClock is injected.
func (w *World) sampleTimeline(endNS, wallStart int64) {
	if w.tl == nil {
		return
	}
	w.tlUnits.Set(float64(len(w.owner)))
	if wc := w.opts.WallClock; wc != nil {
		w.tlEpochWallMS.Set(float64(wc()-wallStart) / 1e6)
		var maxNS int64
		for _, s := range w.shards {
			if s.wallNS > maxNS {
				maxNS = s.wallNS
			}
		}
		w.tlShardStepMS.Set(float64(maxNS) / 1e6)
	}
	w.tl.Record(endNS, w.tlReg.Snapshot())
}

// spanAdd records one world-layer span (0 when tracing is off).
func (w *World) spanAdd(sp span.Span) span.ID {
	if !w.spansOn {
		return 0
	}
	return w.spans.Add(sp)
}

// event writes one canonical JSONL line (no-op without a writer; the
// first write error is latched and surfaced by Run).
func (w *World) event(tNS int64, kind string, unit, other uint32, detail string) {
	if w.events == nil || w.eventsErr != nil {
		return
	}
	w.eventsErr = w.events.Event(worldEvent{TNS: tNS, Kind: kind, Unit: unit, Other: other, Detail: detail})
}

// finalize reduces the run to its Result.
func (w *World) finalize() *Result {
	r := &Result{
		AttackKey:  w.opts.AttackKey,
		Vehicles:   w.mgr.Vehicles(),
		Lifecycle:  w.mgr.C,
		FramesTx:   w.framesTx,
		Delivered:  w.delivered,
		Lost:       w.lost,
		Jammed:     w.jammed,
		AirtimeS:   float64(w.airtimeNS) / 1e9,
		UnitTicks:  w.unitTicks,
		Epochs:     w.epochs,
		Migrations: w.migrations,
	}
	for _, id := range w.mgr.Order() {
		u := w.mgr.Get(id)
		switch {
		case u.Ghost:
			r.Ghosts++
		case len(u.Members) > 0:
			r.Platoons++
		default:
			r.FreeAgents++
		}
	}
	if att := w.delivered + w.lost; att > 0 {
		r.PDR = float64(w.delivered) / float64(att)
	}
	if w.nearTx > 0 {
		r.NearPDR = float64(w.nearOK) / float64(w.nearTx)
	}
	if w.farTx > 0 {
		r.FarPDR = float64(w.farOK) / float64(w.farTx)
	}
	if w.spansOn {
		st := w.spans.Stats()
		r.Spans = &st
		r.Forensics = span.BuildForensics(w.spans, Effects(), 3)
	}
	if w.tl != nil {
		r.Timeline = w.tl.Export()
	}
	return r
}
