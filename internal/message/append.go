package message

import (
	"encoding/binary"
	"errors"
	"math"
)

// This file holds the allocation-free half of the codec: AppendTo
// encoders that extend a caller-owned buffer, and Decode* decoders that
// fill a caller-owned struct, reusing any slice backing it already has.
// The Marshal/Unmarshal* APIs remain as the convenient allocating
// wrappers; per-frame paths (agents, attacks, the metamorphic engine's
// inner loops) should hold a scratch buffer/struct and use these.
//
// Hot-path decoders return bare sentinel errors (ErrShortBuffer,
// ErrBadKind, ErrBadVersion) rather than fmt-wrapped ones: wrapping
// allocates, and these errors fire on every truncated frame a fuzzer or
// a jammed channel produces. errors.Is works on both families.

// ErrBadVersion reports an unsupported envelope version byte.
var ErrBadVersion = errors.New("message: unsupported envelope version")

func appendFloat(buf []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
}

// AppendTo appends the encoded beacon to buf and returns the extended
// slice. Appending to a scratch buffer with capacity is allocation-free.
func (b *Beacon) AppendTo(buf []byte) []byte {
	le := binary.LittleEndian
	buf = append(buf, byte(KindBeacon))
	buf = le.AppendUint32(buf, b.VehicleID)
	buf = le.AppendUint32(buf, b.PlatoonID)
	buf = le.AppendUint32(buf, b.Seq)
	buf = le.AppendUint64(buf, uint64(b.TimestampN))
	buf = append(buf, byte(b.Role))
	buf = appendFloat(buf, b.Position)
	buf = appendFloat(buf, b.Speed)
	buf = appendFloat(buf, b.Accel)
	buf = appendFloat(buf, b.LeaderSpeed)
	buf = appendFloat(buf, b.LeaderAccel)
	return buf
}

// DecodeBeacon decodes a beacon into b, which the caller owns and may
// reuse across frames.
func DecodeBeacon(buf []byte, b *Beacon) error {
	if len(buf) < beaconSize {
		return ErrShortBuffer
	}
	if Kind(buf[0]) != KindBeacon {
		return ErrBadKind
	}
	le := binary.LittleEndian
	b.VehicleID = le.Uint32(buf[1:])
	b.PlatoonID = le.Uint32(buf[5:])
	b.Seq = le.Uint32(buf[9:])
	b.TimestampN = int64(le.Uint64(buf[13:]))
	b.Role = Role(buf[21])
	b.Position = getFloat(buf[22:])
	b.Speed = getFloat(buf[30:])
	b.Accel = getFloat(buf[38:])
	b.LeaderSpeed = getFloat(buf[46:])
	b.LeaderAccel = getFloat(buf[54:])
	return nil
}

// AppendTo appends the encoded maneuver to buf.
func (m *Maneuver) AppendTo(buf []byte) []byte {
	le := binary.LittleEndian
	buf = append(buf, byte(KindManeuver), byte(m.Type))
	buf = le.AppendUint32(buf, m.VehicleID)
	buf = le.AppendUint32(buf, m.PlatoonID)
	buf = le.AppendUint32(buf, m.TargetID)
	buf = le.AppendUint32(buf, m.Seq)
	buf = le.AppendUint64(buf, uint64(m.TimestampN))
	buf = le.AppendUint16(buf, m.Slot)
	buf = appendFloat(buf, m.Param)
	return buf
}

// DecodeManeuver decodes a maneuver into m.
func DecodeManeuver(buf []byte, m *Maneuver) error {
	if len(buf) < maneuverSize {
		return ErrShortBuffer
	}
	if Kind(buf[0]) != KindManeuver {
		return ErrBadKind
	}
	le := binary.LittleEndian
	m.Type = ManeuverType(buf[1])
	m.VehicleID = le.Uint32(buf[2:])
	m.PlatoonID = le.Uint32(buf[6:])
	m.TargetID = le.Uint32(buf[10:])
	m.Seq = le.Uint32(buf[14:])
	m.TimestampN = int64(le.Uint64(buf[18:]))
	m.Slot = le.Uint16(buf[26:])
	m.Param = getFloat(buf[28:])
	return nil
}

// AppendTo appends the encoded roster to buf.
func (m *Membership) AppendTo(buf []byte) []byte {
	le := binary.LittleEndian
	buf = append(buf, byte(KindMembership))
	buf = le.AppendUint32(buf, m.PlatoonID)
	buf = le.AppendUint32(buf, m.LeaderID)
	buf = le.AppendUint32(buf, m.Seq)
	buf = le.AppendUint64(buf, uint64(m.TimestampN))
	buf = le.AppendUint16(buf, uint16(len(m.Members)))
	for _, id := range m.Members {
		buf = le.AppendUint32(buf, id)
	}
	return buf
}

// DecodeMembership decodes a roster into m, reusing m.Members' backing
// array when it has capacity.
func DecodeMembership(buf []byte, m *Membership) error {
	if len(buf) < 23 {
		return ErrShortBuffer
	}
	if Kind(buf[0]) != KindMembership {
		return ErrBadKind
	}
	le := binary.LittleEndian
	n := int(le.Uint16(buf[21:]))
	if len(buf) < 23+4*n {
		return ErrShortBuffer
	}
	m.PlatoonID = le.Uint32(buf[1:])
	m.LeaderID = le.Uint32(buf[5:])
	m.Seq = le.Uint32(buf[9:])
	m.TimestampN = int64(le.Uint64(buf[13:]))
	m.Members = m.Members[:0]
	for i := 0; i < n; i++ {
		m.Members = append(m.Members, le.Uint32(buf[23+4*i:]))
	}
	return nil
}

// AppendTo appends the encoded request to buf.
func (k *KeyRequest) AppendTo(buf []byte) []byte {
	le := binary.LittleEndian
	buf = append(buf, byte(KindKeyRequest))
	buf = le.AppendUint32(buf, k.VehicleID)
	buf = le.AppendUint32(buf, k.PlatoonID)
	buf = le.AppendUint64(buf, k.Nonce)
	buf = le.AppendUint64(buf, uint64(k.TimestampN))
	return buf
}

// DecodeKeyRequest decodes a request into k.
func DecodeKeyRequest(buf []byte, k *KeyRequest) error {
	if len(buf) < keyRequestSize {
		return ErrShortBuffer
	}
	if Kind(buf[0]) != KindKeyRequest {
		return ErrBadKind
	}
	le := binary.LittleEndian
	k.VehicleID = le.Uint32(buf[1:])
	k.PlatoonID = le.Uint32(buf[5:])
	k.Nonce = le.Uint64(buf[9:])
	k.TimestampN = int64(le.Uint64(buf[17:]))
	return nil
}

// AppendTo appends the encoded response to buf.
func (k *KeyResponse) AppendTo(buf []byte) []byte {
	le := binary.LittleEndian
	buf = append(buf, byte(KindKeyResponse))
	buf = le.AppendUint32(buf, k.VehicleID)
	buf = le.AppendUint32(buf, k.PlatoonID)
	buf = le.AppendUint64(buf, k.Nonce)
	buf = le.AppendUint64(buf, uint64(k.TimestampN))
	buf = le.AppendUint32(buf, k.KeyEpoch)
	buf = le.AppendUint16(buf, uint16(len(k.SealedKey)))
	buf = append(buf, k.SealedKey...)
	return buf
}

// DecodeKeyResponse decodes a response into k, reusing k.SealedKey's
// backing array when it has capacity.
func DecodeKeyResponse(buf []byte, k *KeyResponse) error {
	if len(buf) < 31 {
		return ErrShortBuffer
	}
	if Kind(buf[0]) != KindKeyResponse {
		return ErrBadKind
	}
	le := binary.LittleEndian
	n := int(le.Uint16(buf[29:]))
	if len(buf) < 31+n {
		return ErrShortBuffer
	}
	k.VehicleID = le.Uint32(buf[1:])
	k.PlatoonID = le.Uint32(buf[5:])
	k.Nonce = le.Uint64(buf[9:])
	k.TimestampN = int64(le.Uint64(buf[17:]))
	k.KeyEpoch = le.Uint32(buf[25:])
	k.SealedKey = append(k.SealedKey[:0], buf[31:31+n]...)
	return nil
}

// PeekFreshness extracts the (timestamp, sequence) pair of any known
// payload kind straight from the wire, without decoding the rest of the
// message — the replay guard consults this on every verified frame, and
// a full unmarshal there is a per-frame allocation. Key-management
// messages report the low word of their nonce as the sequence. Length
// validation matches the full decoders: a payload the decoder would
// reject is rejected here too.
func PeekFreshness(payload []byte) (ts int64, seq uint32, err error) {
	if len(payload) < 1 {
		return 0, 0, ErrShortBuffer
	}
	le := binary.LittleEndian
	switch Kind(payload[0]) {
	case KindBeacon:
		if len(payload) < beaconSize {
			return 0, 0, ErrShortBuffer
		}
		return int64(le.Uint64(payload[13:])), le.Uint32(payload[9:]), nil
	case KindManeuver:
		if len(payload) < maneuverSize {
			return 0, 0, ErrShortBuffer
		}
		return int64(le.Uint64(payload[18:])), le.Uint32(payload[14:]), nil
	case KindMembership:
		if len(payload) < 23 {
			return 0, 0, ErrShortBuffer
		}
		if n := int(le.Uint16(payload[21:])); len(payload) < 23+4*n {
			return 0, 0, ErrShortBuffer
		}
		return int64(le.Uint64(payload[13:])), le.Uint32(payload[9:]), nil
	case KindKeyRequest:
		if len(payload) < keyRequestSize {
			return 0, 0, ErrShortBuffer
		}
		return int64(le.Uint64(payload[17:])), uint32(le.Uint64(payload[9:])), nil
	case KindKeyResponse:
		if len(payload) < 31 {
			return 0, 0, ErrShortBuffer
		}
		if n := int(le.Uint16(payload[29:])); len(payload) < 31+n {
			return 0, 0, ErrShortBuffer
		}
		return int64(le.Uint64(payload[17:])), uint32(le.Uint64(payload[9:])), nil
	case KindContextProof:
		if len(payload) < 23 {
			return 0, 0, ErrShortBuffer
		}
		n := int(le.Uint16(payload[21:]))
		if n > MaxProofSamples || len(payload) < 23+16*n {
			return 0, 0, ErrShortBuffer
		}
		return int64(le.Uint64(payload[13:])), le.Uint32(payload[9:]), nil
	default:
		return 0, 0, ErrBadKind
	}
}

// AppendTo appends the encoded envelope to buf.
func (e *Envelope) AppendTo(buf []byte) []byte {
	le := binary.LittleEndian
	buf = append(buf, envelopeVersion)
	buf = le.AppendUint32(buf, e.SenderID)
	buf = le.AppendUint32(buf, e.CertSerial)
	buf = le.AppendUint16(buf, uint16(len(e.Payload)))
	buf = append(buf, e.Payload...)
	buf = le.AppendUint16(buf, uint16(len(e.Sig)))
	buf = append(buf, e.Sig...)
	return buf
}

// AppendSignedBytes appends the exact byte string a signature covers —
// the scratch-buffer form of SignedBytes for per-frame sign/verify.
func (e *Envelope) AppendSignedBytes(buf []byte) []byte {
	buf = append(buf, envelopeVersion)
	buf = binary.LittleEndian.AppendUint32(buf, e.SenderID)
	buf = binary.LittleEndian.AppendUint32(buf, e.CertSerial)
	buf = append(buf, e.Payload...)
	return buf
}

// DecodeEnvelope decodes an envelope into e, reusing the backing arrays
// of e.Payload and e.Sig when they have capacity. The decoded Payload
// and Sig are copies of buf's bytes, so the caller may let buf go (but
// must not hand e's slices to code that outlives the next Decode).
func DecodeEnvelope(buf []byte, e *Envelope) error {
	if len(buf) < 11 {
		return ErrShortBuffer
	}
	if buf[0] != envelopeVersion {
		return ErrBadVersion
	}
	le := binary.LittleEndian
	plen := int(le.Uint16(buf[9:]))
	if len(buf) < 11+plen+2 {
		return ErrShortBuffer
	}
	slen := int(le.Uint16(buf[11+plen:]))
	if len(buf) < 13+plen+slen {
		return ErrShortBuffer
	}
	e.SenderID = le.Uint32(buf[1:])
	e.CertSerial = le.Uint32(buf[5:])
	e.Payload = append(e.Payload[:0], buf[11:11+plen]...)
	e.Sig = append(e.Sig[:0], buf[13+plen:13+plen+slen]...)
	return nil
}
