package message

// Native fuzz targets for the binary codec. Two properties per type:
//
//  1. never-panic: Unmarshal* must return an error, never crash, on
//     arbitrary bytes — these are the first parser an attacker-supplied
//     frame meets.
//  2. wire round-trip: when a decode succeeds, re-marshalling the
//     decoded value must reproduce the consumed wire bytes exactly, and
//     decoding those again must be a fixed point. Comparisons are at
//     the byte level so NaN float payloads (NaN != NaN) cannot produce
//     false alarms.
//
// Seed corpus lives under testdata/fuzz/ so `go test` always exercises
// the interesting shapes (valid frames, truncations, wrong kinds) even
// without -fuzz.

import (
	"bytes"
	"testing"
)

func FuzzDecodeBeacon(f *testing.F) {
	b := Beacon{
		VehicleID: 7, PlatoonID: 1, Seq: 42, TimestampN: 123456789,
		Role: RoleLeader, Position: 1999.5, Speed: 27.5, Accel: -0.25,
		LeaderSpeed: 28, LeaderAccel: 0.5,
	}
	f.Add(b.Marshal())
	f.Add([]byte{})
	f.Add([]byte{byte(KindBeacon)})
	f.Add(b.Marshal()[:beaconSize-1])
	f.Add(bytes.Repeat([]byte{0xff}, beaconSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		bc, err := UnmarshalBeacon(data)
		if err != nil {
			if bc != nil {
				t.Fatal("UnmarshalBeacon returned a beacon alongside an error")
			}
			return
		}
		out := bc.Marshal()
		if len(out) != beaconSize {
			t.Fatalf("re-marshal produced %d bytes, want %d", len(out), beaconSize)
		}
		if !bytes.Equal(out, data[:beaconSize]) {
			t.Fatalf("re-marshal differs from wire bytes:\n got %x\nwant %x", out, data[:beaconSize])
		}
		again, err := UnmarshalBeacon(out)
		if err != nil {
			t.Fatalf("re-decode of re-marshal failed: %v", err)
		}
		if !bytes.Equal(again.Marshal(), out) {
			t.Fatal("decode∘marshal is not a fixed point")
		}
	})
}

func FuzzDecodeManeuver(f *testing.F) {
	m := Maneuver{
		Type: ManeuverSplit, VehicleID: 3, PlatoonID: 1, TargetID: 5,
		Seq: 9, TimestampN: 42_000_000_000, Slot: 2, Param: 12.5,
	}
	f.Add(m.Marshal())
	f.Add([]byte{})
	f.Add([]byte{byte(KindManeuver)})
	f.Add(m.Marshal()[:maneuverSize-1])
	f.Add(bytes.Repeat([]byte{0xff}, maneuverSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		mv, err := UnmarshalManeuver(data)
		if err != nil {
			if mv != nil {
				t.Fatal("UnmarshalManeuver returned a maneuver alongside an error")
			}
			return
		}
		out := mv.Marshal()
		if len(out) != maneuverSize {
			t.Fatalf("re-marshal produced %d bytes, want %d", len(out), maneuverSize)
		}
		if !bytes.Equal(out, data[:maneuverSize]) {
			t.Fatalf("re-marshal differs from wire bytes:\n got %x\nwant %x", out, data[:maneuverSize])
		}
		again, err := UnmarshalManeuver(out)
		if err != nil {
			t.Fatalf("re-decode of re-marshal failed: %v", err)
		}
		if !bytes.Equal(again.Marshal(), out) {
			t.Fatal("decode∘marshal is not a fixed point")
		}
	})
}

func FuzzDecodeMembership(f *testing.F) {
	m := Membership{
		PlatoonID: 1, LeaderID: 1, Seq: 7, TimestampN: 1_000_000,
		Members: []uint32{2, 3, 4, 5},
	}
	f.Add(m.Marshal())
	empty := Membership{PlatoonID: 1, LeaderID: 1}
	f.Add(empty.Marshal())
	f.Add([]byte{byte(KindMembership)})
	// Header claims more members than the buffer carries.
	truncated := m.Marshal()
	f.Add(truncated[:len(truncated)-3])
	f.Fuzz(func(t *testing.T, data []byte) {
		mb, err := UnmarshalMembership(data)
		if err != nil {
			if mb != nil {
				t.Fatal("UnmarshalMembership returned a roster alongside an error")
			}
			return
		}
		out := mb.Marshal()
		want := 23 + 4*len(mb.Members)
		if len(out) != want {
			t.Fatalf("re-marshal produced %d bytes, want %d", len(out), want)
		}
		if !bytes.Equal(out, data[:want]) {
			t.Fatalf("re-marshal differs from wire bytes:\n got %x\nwant %x", out, data[:want])
		}
	})
}
