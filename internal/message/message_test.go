package message

import (
	"errors"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBeaconRoundTrip(t *testing.T) {
	b := &Beacon{
		VehicleID:   7,
		PlatoonID:   3,
		Seq:         42,
		TimestampN:  123456789,
		Role:        RoleMember,
		Position:    1523.25,
		Speed:       24.8,
		Accel:       -0.3,
		LeaderSpeed: 25.0,
		LeaderAccel: 0.1,
	}
	got, err := UnmarshalBeacon(b.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, b) {
		t.Fatalf("round trip: got %+v, want %+v", got, b)
	}
}

func TestBeaconQuickRoundTrip(t *testing.T) {
	f := func(vid, pid, seq uint32, ts int64, pos, speed, accel float64) bool {
		b := &Beacon{
			VehicleID: vid, PlatoonID: pid, Seq: seq, TimestampN: ts,
			Role: RoleLeader, Position: pos, Speed: speed, Accel: accel,
		}
		got, err := UnmarshalBeacon(b.Marshal())
		if err != nil {
			return false
		}
		// NaN != NaN under DeepEqual via ==; compare bit patterns.
		return got.VehicleID == vid && got.Seq == seq &&
			math.Float64bits(got.Position) == math.Float64bits(pos) &&
			math.Float64bits(got.Speed) == math.Float64bits(speed)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBeaconErrors(t *testing.T) {
	if _, err := UnmarshalBeacon(nil); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("nil buffer: %v", err)
	}
	b := (&Beacon{}).Marshal()
	if _, err := UnmarshalBeacon(b[:10]); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("short buffer: %v", err)
	}
	b[0] = byte(KindManeuver)
	if _, err := UnmarshalBeacon(b); !errors.Is(err, ErrBadKind) {
		t.Fatalf("wrong kind: %v", err)
	}
}

func TestManeuverRoundTrip(t *testing.T) {
	tests := []ManeuverType{
		ManeuverJoinRequest, ManeuverJoinAccept, ManeuverJoinDeny,
		ManeuverLeaveRequest, ManeuverSplit, ManeuverGapOpen, ManeuverDissolve,
	}
	for _, typ := range tests {
		t.Run(typ.String(), func(t *testing.T) {
			m := &Maneuver{
				Type: typ, VehicleID: 9, PlatoonID: 1, TargetID: 4,
				Seq: 100, TimestampN: 55, Slot: 3, Param: 12.5,
			}
			got, err := UnmarshalManeuver(m.Marshal())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, m) {
				t.Fatalf("round trip: got %+v, want %+v", got, m)
			}
		})
	}
}

func TestManeuverErrors(t *testing.T) {
	if _, err := UnmarshalManeuver([]byte{1, 2}); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("short: %v", err)
	}
	buf := (&Maneuver{Type: ManeuverSplit}).Marshal()
	buf[0] = byte(KindBeacon)
	if _, err := UnmarshalManeuver(buf); !errors.Is(err, ErrBadKind) {
		t.Fatalf("kind: %v", err)
	}
}

func TestMembershipRoundTrip(t *testing.T) {
	m := &Membership{
		PlatoonID: 1, LeaderID: 10, Seq: 5, TimestampN: 999,
		Members: []uint32{11, 12, 13, 14},
	}
	got, err := UnmarshalMembership(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip: got %+v, want %+v", got, m)
	}
}

func TestMembershipEmpty(t *testing.T) {
	m := &Membership{PlatoonID: 1, LeaderID: 10}
	got, err := UnmarshalMembership(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Members) != 0 {
		t.Fatalf("members = %v, want empty", got.Members)
	}
}

func TestMembershipTruncatedList(t *testing.T) {
	m := &Membership{PlatoonID: 1, LeaderID: 10, Members: []uint32{1, 2, 3}}
	buf := m.Marshal()
	if _, err := UnmarshalMembership(buf[:len(buf)-4]); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("truncated list: %v", err)
	}
}

func TestKeyRequestRoundTrip(t *testing.T) {
	k := &KeyRequest{VehicleID: 3, PlatoonID: 1, Nonce: 0xDEADBEEF, TimestampN: 7}
	got, err := UnmarshalKeyRequest(k.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, k) {
		t.Fatalf("round trip: got %+v, want %+v", got, k)
	}
}

func TestKeyResponseRoundTrip(t *testing.T) {
	k := &KeyResponse{
		VehicleID: 3, PlatoonID: 1, Nonce: 42, TimestampN: 7,
		KeyEpoch: 2, SealedKey: []byte{1, 2, 3, 4, 5},
	}
	got, err := UnmarshalKeyResponse(k.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, k) {
		t.Fatalf("round trip: got %+v, want %+v", got, k)
	}
}

func TestKeyResponseTruncatedKey(t *testing.T) {
	k := &KeyResponse{SealedKey: []byte{1, 2, 3, 4}}
	buf := k.Marshal()
	if _, err := UnmarshalKeyResponse(buf[:len(buf)-2]); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("truncated key: %v", err)
	}
}

func TestPeekKind(t *testing.T) {
	b := (&Beacon{}).Marshal()
	k, err := PeekKind(b)
	if err != nil || k != KindBeacon {
		t.Fatalf("PeekKind = %v, %v", k, err)
	}
	if _, err := PeekKind(nil); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("empty: %v", err)
	}
}

func TestKindAndRoleStrings(t *testing.T) {
	if KindBeacon.String() != "beacon" || KindManeuver.String() != "maneuver" {
		t.Fatal("kind strings")
	}
	if Kind(200).String() == "" {
		t.Fatal("unknown kind string empty")
	}
	if RoleLeader.String() != "leader" || Role(200).String() == "" {
		t.Fatal("role strings")
	}
	if ManeuverType(200).String() == "" {
		t.Fatal("unknown maneuver string empty")
	}
}
