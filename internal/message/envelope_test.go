package message

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	payload := (&Beacon{VehicleID: 5, Speed: 20}).Marshal()
	e := &Envelope{SenderID: 5, CertSerial: 9, Payload: payload, Sig: []byte("signature")}
	got, err := UnmarshalEnvelope(e.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.SenderID != 5 || got.CertSerial != 9 {
		t.Fatalf("header: %+v", got)
	}
	if !bytes.Equal(got.Payload, payload) || !bytes.Equal(got.Sig, e.Sig) {
		t.Fatal("payload or sig mismatch")
	}
	k, err := got.Kind()
	if err != nil || k != KindBeacon {
		t.Fatalf("Kind = %v, %v", k, err)
	}
}

func TestEnvelopeUnsigned(t *testing.T) {
	e := &Envelope{SenderID: 1, Payload: []byte{byte(KindBeacon)}}
	got, err := UnmarshalEnvelope(e.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sig) != 0 {
		t.Fatalf("sig = %v, want empty", got.Sig)
	}
}

func TestEnvelopeSignedBytesBindsSender(t *testing.T) {
	payload := []byte{byte(KindManeuver), 1, 2, 3}
	a := &Envelope{SenderID: 1, CertSerial: 7, Payload: payload}
	b := &Envelope{SenderID: 2, CertSerial: 7, Payload: payload}
	if bytes.Equal(a.SignedBytes(), b.SignedBytes()) {
		t.Fatal("SignedBytes must differ when claimed sender differs")
	}
	c := &Envelope{SenderID: 1, CertSerial: 8, Payload: payload}
	if bytes.Equal(a.SignedBytes(), c.SignedBytes()) {
		t.Fatal("SignedBytes must differ when cert serial differs")
	}
}

func TestEnvelopeErrors(t *testing.T) {
	if _, err := UnmarshalEnvelope([]byte{1, 2}); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("short header: %v", err)
	}
	e := &Envelope{SenderID: 1, Payload: []byte{1, 2, 3}, Sig: []byte{9}}
	buf := e.Marshal()
	if _, err := UnmarshalEnvelope(buf[:len(buf)-1]); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("truncated sig: %v", err)
	}
	bad := append([]byte{}, buf...)
	bad[0] = 99
	if _, err := UnmarshalEnvelope(bad); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestPeekEnvelope(t *testing.T) {
	payload := (&Maneuver{Type: ManeuverJoinRequest, VehicleID: 40}).Marshal()
	e := &Envelope{SenderID: 40, CertSerial: 3, Payload: payload, Sig: []byte("sig")}
	buf := e.Marshal()

	sender, kind, err := PeekEnvelope(buf)
	if err != nil {
		t.Fatal(err)
	}
	if sender != 40 || kind != KindManeuver {
		t.Fatalf("peek = sender %d kind %v, want 40 %v", sender, kind, KindManeuver)
	}
	// Peek must agree with the full decode it is a shortcut for.
	full, err := UnmarshalEnvelope(buf)
	if err != nil {
		t.Fatal(err)
	}
	fk, err := full.Kind()
	if err != nil {
		t.Fatal(err)
	}
	if full.SenderID != sender || fk != kind {
		t.Fatalf("peek (%d, %v) disagrees with decode (%d, %v)", sender, kind, full.SenderID, fk)
	}

	if _, _, err := PeekEnvelope(buf[:11]); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("short buffer: %v", err)
	}
	bad := append([]byte{}, buf...)
	bad[0] = 99
	if _, _, err := PeekEnvelope(bad); err == nil {
		t.Fatal("bad version accepted")
	}
	// A header-complete buffer whose declared payload length overruns
	// the buffer must be rejected, not read out of bounds.
	truncated := append([]byte{}, buf[:12]...)
	if _, _, err := PeekEnvelope(truncated); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("truncated payload: %v", err)
	}
}

func TestEnvelopeQuickRoundTrip(t *testing.T) {
	f := func(sender, serial uint32, payload, sig []byte) bool {
		if len(payload) > 60000 || len(sig) > 60000 {
			return true
		}
		e := &Envelope{SenderID: sender, CertSerial: serial, Payload: payload, Sig: sig}
		got, err := UnmarshalEnvelope(e.Marshal())
		if err != nil {
			return false
		}
		if got.SenderID != sender || got.CertSerial != serial {
			return false
		}
		if !bytes.Equal(got.Payload, payload) {
			return false
		}
		return len(sig) == 0 && len(got.Sig) == 0 || bytes.Equal(got.Sig, sig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
