// Package message defines the wire formats exchanged over platoon V2X
// links: CAM-style beacons, maneuver control messages, and key-management
// messages, together with a compact deterministic binary codec and a
// signable envelope.
//
// The formats follow the information flow the paper describes (§II-B):
// beacons carry "speed, location, change in speed and direction" plus the
// leader's state, and maneuver messages carry join/leave/split requests —
// the objects fake-maneuver attacks forge (§V-A3).
package message

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Kind discriminates message types inside an envelope.
type Kind uint8

// Message kinds.
const (
	KindBeacon Kind = iota + 1
	KindManeuver
	KindKeyRequest
	KindKeyResponse
	KindMembership
)

func (k Kind) String() string {
	switch k {
	case KindBeacon:
		return "beacon"
	case KindManeuver:
		return "maneuver"
	case KindKeyRequest:
		return "key-request"
	case KindKeyResponse:
		return "key-response"
	case KindMembership:
		return "membership"
	case KindContextProof:
		return "context-proof"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Role is a vehicle's role within a platoon.
type Role uint8

// Roles.
const (
	RoleFree Role = iota + 1
	RoleLeader
	RoleMember
	RoleJoining
	RoleLeaving
)

func (r Role) String() string {
	switch r {
	case RoleFree:
		return "free"
	case RoleLeader:
		return "leader"
	case RoleMember:
		return "member"
	case RoleJoining:
		return "joining"
	case RoleLeaving:
		return "leaving"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// Errors returned by the codec.
var (
	ErrShortBuffer = errors.New("message: short buffer")
	ErrBadKind     = errors.New("message: wrong kind")
)

// Beacon is the periodic cooperative-awareness message every platoon
// vehicle broadcasts (typically at 10 Hz). CACC consumes the predecessor
// and leader fields.
type Beacon struct {
	VehicleID  uint32
	PlatoonID  uint32
	Seq        uint32
	TimestampN int64 // sim.Time in nanoseconds
	Role       Role

	Position float64 // m along road
	Speed    float64 // m/s
	Accel    float64 // m/s²

	// Leader state as known to the sender; members repeat the leader's
	// values so CACC followers have a fresh leader reference even under
	// loss.
	LeaderSpeed float64
	LeaderAccel float64
}

const beaconSize = 1 + 4 + 4 + 4 + 8 + 1 + 8*5

// Marshal encodes the beacon.
func (b *Beacon) Marshal() []byte {
	buf := make([]byte, beaconSize)
	buf[0] = byte(KindBeacon)
	le := binary.LittleEndian
	le.PutUint32(buf[1:], b.VehicleID)
	le.PutUint32(buf[5:], b.PlatoonID)
	le.PutUint32(buf[9:], b.Seq)
	le.PutUint64(buf[13:], uint64(b.TimestampN))
	buf[21] = byte(b.Role)
	putFloat(buf[22:], b.Position)
	putFloat(buf[30:], b.Speed)
	putFloat(buf[38:], b.Accel)
	putFloat(buf[46:], b.LeaderSpeed)
	putFloat(buf[54:], b.LeaderAccel)
	return buf
}

// UnmarshalBeacon decodes a beacon.
func UnmarshalBeacon(buf []byte) (*Beacon, error) {
	if len(buf) < beaconSize {
		return nil, fmt.Errorf("%w: beacon needs %d bytes, got %d", ErrShortBuffer, beaconSize, len(buf))
	}
	if Kind(buf[0]) != KindBeacon {
		return nil, fmt.Errorf("%w: %v", ErrBadKind, Kind(buf[0]))
	}
	le := binary.LittleEndian
	return &Beacon{
		VehicleID:   le.Uint32(buf[1:]),
		PlatoonID:   le.Uint32(buf[5:]),
		Seq:         le.Uint32(buf[9:]),
		TimestampN:  int64(le.Uint64(buf[13:])),
		Role:        Role(buf[21]),
		Position:    getFloat(buf[22:]),
		Speed:       getFloat(buf[30:]),
		Accel:       getFloat(buf[38:]),
		LeaderSpeed: getFloat(buf[46:]),
		LeaderAccel: getFloat(buf[54:]),
	}, nil
}

// ManeuverType enumerates platoon maneuvers (§V-A3: fake entrance, fake
// leave, fake split are forged instances of these).
type ManeuverType uint8

// Maneuver types.
const (
	ManeuverJoinRequest ManeuverType = iota + 1
	ManeuverJoinAccept
	ManeuverJoinDeny
	ManeuverJoinComplete
	ManeuverLeaveRequest
	ManeuverLeaveAccept
	ManeuverSplit
	ManeuverGapOpen
	ManeuverGapClose
	ManeuverDissolve
)

func (m ManeuverType) String() string {
	switch m {
	case ManeuverJoinRequest:
		return "join-request"
	case ManeuverJoinAccept:
		return "join-accept"
	case ManeuverJoinDeny:
		return "join-deny"
	case ManeuverJoinComplete:
		return "join-complete"
	case ManeuverLeaveRequest:
		return "leave-request"
	case ManeuverLeaveAccept:
		return "leave-accept"
	case ManeuverSplit:
		return "split"
	case ManeuverGapOpen:
		return "gap-open"
	case ManeuverGapClose:
		return "gap-close"
	case ManeuverDissolve:
		return "dissolve"
	default:
		return fmt.Sprintf("maneuver(%d)", uint8(m))
	}
}

// Maneuver is a platoon control message.
type Maneuver struct {
	Type       ManeuverType
	VehicleID  uint32 // originator
	PlatoonID  uint32
	TargetID   uint32 // addressee vehicle (0 = whole platoon)
	Seq        uint32
	TimestampN int64
	// Slot is the platoon position index a join targets or a split
	// occurs at.
	Slot uint16
	// Param carries a maneuver-specific value (e.g. requested gap in
	// metres for GapOpen).
	Param float64
}

const maneuverSize = 1 + 1 + 4 + 4 + 4 + 4 + 8 + 2 + 8

// Marshal encodes the maneuver.
func (m *Maneuver) Marshal() []byte {
	buf := make([]byte, maneuverSize)
	buf[0] = byte(KindManeuver)
	buf[1] = byte(m.Type)
	le := binary.LittleEndian
	le.PutUint32(buf[2:], m.VehicleID)
	le.PutUint32(buf[6:], m.PlatoonID)
	le.PutUint32(buf[10:], m.TargetID)
	le.PutUint32(buf[14:], m.Seq)
	le.PutUint64(buf[18:], uint64(m.TimestampN))
	le.PutUint16(buf[26:], m.Slot)
	putFloat(buf[28:], m.Param)
	return buf
}

// UnmarshalManeuver decodes a maneuver.
func UnmarshalManeuver(buf []byte) (*Maneuver, error) {
	if len(buf) < maneuverSize {
		return nil, fmt.Errorf("%w: maneuver needs %d bytes, got %d", ErrShortBuffer, maneuverSize, len(buf))
	}
	if Kind(buf[0]) != KindManeuver {
		return nil, fmt.Errorf("%w: %v", ErrBadKind, Kind(buf[0]))
	}
	le := binary.LittleEndian
	return &Maneuver{
		Type:       ManeuverType(buf[1]),
		VehicleID:  le.Uint32(buf[2:]),
		PlatoonID:  le.Uint32(buf[6:]),
		TargetID:   le.Uint32(buf[10:]),
		Seq:        le.Uint32(buf[14:]),
		TimestampN: int64(le.Uint64(buf[18:])),
		Slot:       le.Uint16(buf[26:]),
		Param:      getFloat(buf[28:]),
	}, nil
}

// Membership is the leader's periodic roster announcement: the ordered
// list of member vehicle IDs. Sybil ghosts that get admitted show up
// here, which is how Table II's "leader thinks there are more vehicles
// than there really are" effect is measured.
type Membership struct {
	PlatoonID  uint32
	LeaderID   uint32
	Seq        uint32
	TimestampN int64
	Members    []uint32 // ordered front-to-back, excluding the leader
}

// Marshal encodes the roster.
func (m *Membership) Marshal() []byte {
	buf := make([]byte, 1+4+4+4+8+2+4*len(m.Members))
	buf[0] = byte(KindMembership)
	le := binary.LittleEndian
	le.PutUint32(buf[1:], m.PlatoonID)
	le.PutUint32(buf[5:], m.LeaderID)
	le.PutUint32(buf[9:], m.Seq)
	le.PutUint64(buf[13:], uint64(m.TimestampN))
	le.PutUint16(buf[21:], uint16(len(m.Members)))
	off := 23
	for _, id := range m.Members {
		le.PutUint32(buf[off:], id)
		off += 4
	}
	return buf
}

// UnmarshalMembership decodes a roster.
func UnmarshalMembership(buf []byte) (*Membership, error) {
	if len(buf) < 23 {
		return nil, fmt.Errorf("%w: membership header needs 23 bytes, got %d", ErrShortBuffer, len(buf))
	}
	if Kind(buf[0]) != KindMembership {
		return nil, fmt.Errorf("%w: %v", ErrBadKind, Kind(buf[0]))
	}
	le := binary.LittleEndian
	m := &Membership{
		PlatoonID:  le.Uint32(buf[1:]),
		LeaderID:   le.Uint32(buf[5:]),
		Seq:        le.Uint32(buf[9:]),
		TimestampN: int64(le.Uint64(buf[13:])),
	}
	n := int(le.Uint16(buf[21:]))
	if len(buf) < 23+4*n {
		return nil, fmt.Errorf("%w: membership with %d members needs %d bytes, got %d",
			ErrShortBuffer, n, 23+4*n, len(buf))
	}
	m.Members = make([]uint32, n)
	for i := 0; i < n; i++ {
		m.Members[i] = le.Uint32(buf[23+4*i:])
	}
	return m, nil
}

// KeyRequest asks an RSU / trusted authority for the current platoon
// session key (§VI-A2).
type KeyRequest struct {
	VehicleID  uint32
	PlatoonID  uint32
	Nonce      uint64
	TimestampN int64
}

const keyRequestSize = 1 + 4 + 4 + 8 + 8

// Marshal encodes the request.
func (k *KeyRequest) Marshal() []byte {
	buf := make([]byte, keyRequestSize)
	buf[0] = byte(KindKeyRequest)
	le := binary.LittleEndian
	le.PutUint32(buf[1:], k.VehicleID)
	le.PutUint32(buf[5:], k.PlatoonID)
	le.PutUint64(buf[9:], k.Nonce)
	le.PutUint64(buf[17:], uint64(k.TimestampN))
	return buf
}

// UnmarshalKeyRequest decodes a request.
func UnmarshalKeyRequest(buf []byte) (*KeyRequest, error) {
	if len(buf) < keyRequestSize {
		return nil, fmt.Errorf("%w: key request needs %d bytes, got %d", ErrShortBuffer, keyRequestSize, len(buf))
	}
	if Kind(buf[0]) != KindKeyRequest {
		return nil, fmt.Errorf("%w: %v", ErrBadKind, Kind(buf[0]))
	}
	le := binary.LittleEndian
	return &KeyRequest{
		VehicleID:  le.Uint32(buf[1:]),
		PlatoonID:  le.Uint32(buf[5:]),
		Nonce:      le.Uint64(buf[9:]),
		TimestampN: int64(le.Uint64(buf[17:])),
	}, nil
}

// KeyResponse carries a (sealed) session key from the RSU to a vehicle.
type KeyResponse struct {
	VehicleID  uint32
	PlatoonID  uint32
	Nonce      uint64 // echoes the request nonce
	TimestampN int64
	KeyEpoch   uint32
	SealedKey  []byte // key encrypted to the vehicle (opaque here)
}

// Marshal encodes the response.
func (k *KeyResponse) Marshal() []byte {
	buf := make([]byte, 1+4+4+8+8+4+2+len(k.SealedKey))
	buf[0] = byte(KindKeyResponse)
	le := binary.LittleEndian
	le.PutUint32(buf[1:], k.VehicleID)
	le.PutUint32(buf[5:], k.PlatoonID)
	le.PutUint64(buf[9:], k.Nonce)
	le.PutUint64(buf[17:], uint64(k.TimestampN))
	le.PutUint32(buf[25:], k.KeyEpoch)
	le.PutUint16(buf[29:], uint16(len(k.SealedKey)))
	copy(buf[31:], k.SealedKey)
	return buf
}

// UnmarshalKeyResponse decodes a response.
func UnmarshalKeyResponse(buf []byte) (*KeyResponse, error) {
	if len(buf) < 31 {
		return nil, fmt.Errorf("%w: key response header needs 31 bytes, got %d", ErrShortBuffer, len(buf))
	}
	if Kind(buf[0]) != KindKeyResponse {
		return nil, fmt.Errorf("%w: %v", ErrBadKind, Kind(buf[0]))
	}
	le := binary.LittleEndian
	k := &KeyResponse{
		VehicleID:  le.Uint32(buf[1:]),
		PlatoonID:  le.Uint32(buf[5:]),
		Nonce:      le.Uint64(buf[9:]),
		TimestampN: int64(le.Uint64(buf[17:])),
		KeyEpoch:   le.Uint32(buf[25:]),
	}
	n := int(le.Uint16(buf[29:]))
	if len(buf) < 31+n {
		return nil, fmt.Errorf("%w: sealed key of %d bytes truncated", ErrShortBuffer, n)
	}
	k.SealedKey = make([]byte, n)
	copy(k.SealedKey, buf[31:31+n])
	return k, nil
}

// PeekKind returns the kind byte of an encoded message without decoding
// it.
//
//platoonvet:routing-safe -- a one-byte discriminator for routing; callers still verify before trusting the message body
func PeekKind(buf []byte) (Kind, error) {
	if len(buf) < 1 {
		return 0, ErrShortBuffer
	}
	return Kind(buf[0]), nil
}

func putFloat(b []byte, f float64) {
	binary.LittleEndian.PutUint64(b, math.Float64bits(f))
}

func getFloat(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}
