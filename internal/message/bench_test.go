package message

import "testing"

func BenchmarkBeaconMarshal(b *testing.B) {
	bc := &Beacon{
		VehicleID: 7, PlatoonID: 1, Seq: 42, TimestampN: 123456789,
		Role: RoleMember, Position: 1523.25, Speed: 24.8, Accel: -0.3,
		LeaderSpeed: 25, LeaderAccel: 0.1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(bc.Marshal()) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkBeaconUnmarshal(b *testing.B) {
	buf := (&Beacon{VehicleID: 7, Seq: 42}).Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := UnmarshalBeacon(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnvelopeRoundTrip(b *testing.B) {
	payload := (&Beacon{VehicleID: 7}).Marshal()
	env := &Envelope{SenderID: 7, CertSerial: 3, Payload: payload, Sig: make([]byte, 64)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wire := env.Marshal()
		if _, err := UnmarshalEnvelope(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMembershipMarshal(b *testing.B) {
	m := &Membership{PlatoonID: 1, LeaderID: 1, Seq: 9, Members: make([]uint32, 15)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(m.Marshal()) == 0 {
			b.Fatal("empty")
		}
	}
}
