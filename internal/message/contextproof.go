package message

import (
	"encoding/binary"
	"fmt"
	"math"
)

// KindContextProof extends the message kinds with the Convoy-style
// physical presence proof ([4]): a joiner's recent road-roughness
// samples, presented before a join request so the leader can correlate
// them against its own suspension record.
const KindContextProof Kind = 6

// MaxProofSamples bounds a proof's size (keeps frames within one MTU).
const MaxProofSamples = 64

// ProofSample is one (position, roughness) observation.
type ProofSample struct {
	Position float64
	Value    float64
}

// ContextProof is the §V-A2 ghost-vehicle countermeasure payload.
type ContextProof struct {
	VehicleID  uint32
	PlatoonID  uint32
	Seq        uint32
	TimestampN int64
	Samples    []ProofSample
}

// Marshal encodes the proof; sample count is capped at MaxProofSamples.
func (c *ContextProof) Marshal() []byte {
	n := len(c.Samples)
	if n > MaxProofSamples {
		n = MaxProofSamples
	}
	buf := make([]byte, 1+4+4+4+8+2+16*n)
	buf[0] = byte(KindContextProof)
	le := binary.LittleEndian
	le.PutUint32(buf[1:], c.VehicleID)
	le.PutUint32(buf[5:], c.PlatoonID)
	le.PutUint32(buf[9:], c.Seq)
	le.PutUint64(buf[13:], uint64(c.TimestampN))
	le.PutUint16(buf[21:], uint16(n))
	off := 23
	for i := 0; i < n; i++ {
		le.PutUint64(buf[off:], math.Float64bits(c.Samples[i].Position))
		le.PutUint64(buf[off+8:], math.Float64bits(c.Samples[i].Value))
		off += 16
	}
	return buf
}

// UnmarshalContextProof decodes a proof.
func UnmarshalContextProof(buf []byte) (*ContextProof, error) {
	if len(buf) < 23 {
		return nil, fmt.Errorf("%w: context proof header needs 23 bytes, got %d", ErrShortBuffer, len(buf))
	}
	if Kind(buf[0]) != KindContextProof {
		return nil, fmt.Errorf("%w: %v", ErrBadKind, Kind(buf[0]))
	}
	le := binary.LittleEndian
	c := &ContextProof{
		VehicleID:  le.Uint32(buf[1:]),
		PlatoonID:  le.Uint32(buf[5:]),
		Seq:        le.Uint32(buf[9:]),
		TimestampN: int64(le.Uint64(buf[13:])),
	}
	n := int(le.Uint16(buf[21:]))
	if n > MaxProofSamples {
		return nil, fmt.Errorf("message: context proof claims %d samples (max %d)", n, MaxProofSamples)
	}
	if len(buf) < 23+16*n {
		return nil, fmt.Errorf("%w: proof with %d samples truncated", ErrShortBuffer, n)
	}
	c.Samples = make([]ProofSample, n)
	off := 23
	for i := 0; i < n; i++ {
		c.Samples[i].Position = math.Float64frombits(le.Uint64(buf[off:]))
		c.Samples[i].Value = math.Float64frombits(le.Uint64(buf[off+8:]))
		off += 16
	}
	return c, nil
}
