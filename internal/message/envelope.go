package message

import (
	"encoding/binary"
	"fmt"
)

// envelopeVersion is the wire version byte.
const envelopeVersion = 1

// Envelope wraps an encoded message with the sender's claimed identity
// and an optional signature. The signature covers version, claimed
// sender, certificate serial and payload — so an impersonator (§V-F) who
// rewrites SenderID invalidates the signature unless they also hold the
// matching private key.
//
// Sig empty means "unsecured platoon", the baseline configuration the
// attacks in Table II exploit.
type Envelope struct {
	SenderID   uint32
	CertSerial uint32
	Payload    []byte
	Sig        []byte
}

// Kind returns the payload's message kind.
//
//platoonvet:routing-safe -- the kind byte only selects the dispatch arm; no routed arm trusts payload contents until it verifies
func (e *Envelope) Kind() (Kind, error) { return PeekKind(e.Payload) }

// SignedBytes returns the exact byte string a signature covers.
func (e *Envelope) SignedBytes() []byte {
	buf := make([]byte, 0, 1+4+4+len(e.Payload))
	buf = append(buf, envelopeVersion)
	buf = binary.LittleEndian.AppendUint32(buf, e.SenderID)
	buf = binary.LittleEndian.AppendUint32(buf, e.CertSerial)
	buf = append(buf, e.Payload...)
	return buf
}

// Marshal encodes the envelope for transmission.
func (e *Envelope) Marshal() []byte {
	buf := make([]byte, 0, 1+4+4+2+len(e.Payload)+2+len(e.Sig))
	buf = append(buf, envelopeVersion)
	buf = binary.LittleEndian.AppendUint32(buf, e.SenderID)
	buf = binary.LittleEndian.AppendUint32(buf, e.CertSerial)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(e.Payload)))
	buf = append(buf, e.Payload...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(e.Sig)))
	buf = append(buf, e.Sig...)
	return buf
}

// PeekEnvelope returns the claimed sender and inner message kind of
// an encoded envelope without decoding or allocating — the peek
// instrumentation uses to label frames (span details, injection
// records) on paths where a full unmarshal would cost.
//
//platoonvet:routing-safe -- labels frames for instrumentation and routing; nothing peeked here feeds an acceptance decision
func PeekEnvelope(buf []byte) (sender uint32, kind Kind, err error) {
	if len(buf) < 12 {
		return 0, 0, fmt.Errorf("%w: envelope peek needs 12 bytes, got %d", ErrShortBuffer, len(buf))
	}
	if buf[0] != envelopeVersion {
		return 0, 0, fmt.Errorf("message: unsupported envelope version %d", buf[0])
	}
	le := binary.LittleEndian
	if plen := int(le.Uint16(buf[9:])); plen < 1 || len(buf) < 11+plen {
		return 0, 0, fmt.Errorf("%w: envelope payload truncated", ErrShortBuffer)
	}
	return le.Uint32(buf[1:]), Kind(buf[11]), nil
}

// UnmarshalEnvelope decodes an envelope.
func UnmarshalEnvelope(buf []byte) (*Envelope, error) {
	if len(buf) < 11 {
		return nil, fmt.Errorf("%w: envelope header needs 11 bytes, got %d", ErrShortBuffer, len(buf))
	}
	if buf[0] != envelopeVersion {
		return nil, fmt.Errorf("message: unsupported envelope version %d", buf[0])
	}
	le := binary.LittleEndian
	e := &Envelope{
		SenderID:   le.Uint32(buf[1:]),
		CertSerial: le.Uint32(buf[5:]),
	}
	plen := int(le.Uint16(buf[9:]))
	if len(buf) < 11+plen+2 {
		return nil, fmt.Errorf("%w: payload of %d bytes truncated", ErrShortBuffer, plen)
	}
	e.Payload = make([]byte, plen)
	copy(e.Payload, buf[11:11+plen])
	slen := int(le.Uint16(buf[11+plen:]))
	if len(buf) < 13+plen+slen {
		return nil, fmt.Errorf("%w: signature of %d bytes truncated", ErrShortBuffer, slen)
	}
	if slen > 0 {
		e.Sig = make([]byte, slen)
		copy(e.Sig, buf[13+plen:13+plen+slen])
	}
	return e, nil
}
