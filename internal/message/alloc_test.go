package message

import "testing"

// The append/decode codec surface is the hottest per-frame code in the
// simulator; these pins keep it allocation-free so the hotalloc
// analyzer's claims stay true in perpetuity.

func TestAppendToDecodeZeroAlloc(t *testing.T) {
	b := Beacon{VehicleID: 7, Seq: 9, TimestampN: 123456, Position: 10, Speed: 27.5, Accel: 0.3}
	m := Maneuver{Type: ManeuverJoinRequest, PlatoonID: 3, VehicleID: 7, Seq: 11, TimestampN: 123456}
	buf := make([]byte, 0, 256)

	cases := []struct {
		name string
		fn   func()
	}{
		{"Beacon.AppendTo", func() { buf = b.AppendTo(buf[:0]) }},
		{"Maneuver.AppendTo", func() { buf = m.AppendTo(buf[:0]) }},
	}
	for _, c := range cases {
		if allocs := testing.AllocsPerRun(1000, c.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", c.name, allocs)
		}
	}

	wireB := b.AppendTo(nil)
	wireM := m.AppendTo(nil)
	var db Beacon
	var dm Maneuver
	decodes := []struct {
		name string
		fn   func()
	}{
		{"DecodeBeacon", func() {
			if err := DecodeBeacon(wireB, &db); err != nil {
				t.Fatal(err)
			}
		}},
		{"DecodeManeuver", func() {
			if err := DecodeManeuver(wireM, &dm); err != nil {
				t.Fatal(err)
			}
		}},
		{"PeekKind", func() {
			if _, err := PeekKind(wireB); err != nil {
				t.Fatal(err)
			}
		}},
		{"PeekFreshness", func() {
			if _, _, err := PeekFreshness(wireB); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, c := range decodes {
		if allocs := testing.AllocsPerRun(1000, c.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", c.name, allocs)
		}
	}
}

func TestEnvelopeAppendToZeroAlloc(t *testing.T) {
	payload := (&Beacon{VehicleID: 7, Seq: 9}).AppendTo(nil)
	e := Envelope{SenderID: 7, Payload: payload, Sig: make([]byte, 64), CertSerial: 3}
	buf := make([]byte, 0, 256)
	if allocs := testing.AllocsPerRun(1000, func() { buf = e.AppendTo(buf[:0]) }); allocs != 0 {
		t.Errorf("Envelope.AppendTo: %v allocs/op, want 0", allocs)
	}
}
