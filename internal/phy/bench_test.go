package phy

import (
	"testing"

	"platoonsec/internal/sim"
)

func BenchmarkRxPowerFaded(b *testing.B) {
	c := NewChannel(DefaultEnvironment(), sim.NewStream(1, "bench"))
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += c.RxPowerDBm(20, 50)
	}
	_ = sink
}

func BenchmarkPER(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += PER(float64(i%40)-10, 300)
	}
	_ = sink
}

func BenchmarkSumDBm(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += SumDBm(-70, -80, -90, -99)
	}
	_ = sink
}
