package phy

import (
	"testing"

	"platoonsec/internal/sim"
)

// TestChannelHotPathZeroAlloc pins the precomputed-slope rewrite: the
// per-reception draw chain (path loss, faded power, SINR, PER) must
// not allocate.
func TestChannelHotPathZeroAlloc(t *testing.T) {
	c := NewChannel(DefaultEnvironment(), sim.NewStream(1, "phy"))

	var acc float64
	cases := []struct {
		name string
		fn   func()
	}{
		{"PathLossDB", func() { acc += c.PathLossDB(120) }},
		{"RxPowerDBm", func() { acc += c.RxPowerDBm(20, 120) }},
		{"SINRdB", func() { acc += SINRdB(-60, -95, c.Env.NoiseFloorDBm) }},
		{"AddDBm", func() { acc += AddDBm(-80, -85) }},
		{"SumDBm", func() { acc += SumDBm(-80, -85, -90) }},
		{"PER", func() { acc += PER(12, 64) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(1000, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
	_ = acc
}
