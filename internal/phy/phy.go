// Package phy models the physical layer of platoon communication: an IEEE
// 802.11p-like radio channel (log-distance path loss, shadowing, Rayleigh
// fading, SINR-driven packet error rate) and a visible-light link used by
// the SP-VLC hybrid defense.
//
// Jamming (§V-B of the paper) is modelled honestly as physics rather than
// as a boolean switch: a jammer is just another transmitter whose power
// raises the interference term of every receiver's SINR. Whether a platoon
// survives a jammer therefore falls out of the same equations that govern
// normal reception.
package phy

import (
	"fmt"
	"math"

	"platoonsec/internal/obs"
	"platoonsec/internal/obs/span"
	"platoonsec/internal/sim"
)

// Environment holds the propagation constants for the RF channel.
type Environment struct {
	// RefLossDB is the path loss at the 1 m reference distance.
	RefLossDB float64
	// Exponent is the path-loss exponent (highway V2V: ≈2.2–2.7).
	Exponent float64
	// ShadowSigmaDB is the log-normal shadowing standard deviation.
	ShadowSigmaDB float64
	// RayleighFading enables small-scale Rayleigh fading on each
	// reception.
	RayleighFading bool
	// NoiseFloorDBm is the thermal noise floor for a 10 MHz 802.11p
	// channel (≈ −104 dBm + NF).
	NoiseFloorDBm float64
	// CaptureThresholdDB is the SINR above which a frame can be captured
	// despite interference.
	CaptureThresholdDB float64
	// CarrierSenseDBm is the energy-detection threshold used by the MAC.
	CarrierSenseDBm float64
}

// DefaultEnvironment returns highway V2V constants.
func DefaultEnvironment() Environment {
	return Environment{
		RefLossDB:          47.86, // free space at 1 m, 5.9 GHz
		Exponent:           2.4,
		ShadowSigmaDB:      2.0,
		RayleighFading:     true,
		NoiseFloorDBm:      -99.0,
		CaptureThresholdDB: 8.0,
		CarrierSenseDBm:    -85.0,
	}
}

// DeepFadeDB is the small-scale fading gain below which a reception
// counts as a deep fade for observability purposes.
const DeepFadeDB = -10.0

// Channel evaluates propagation between positions. It is not safe for
// concurrent use; the DES is single-goroutine.
type Channel struct {
	Env Environment
	rng *sim.Stream

	// Observability. The channel has no kernel reference, so the
	// simulated clock arrives as an injected nowNS closure. All handles
	// are nil when observability is off; the instrument methods are
	// nil-receiver no-ops, so call sites never branch.
	rec          obs.Recorder
	nowNS        func() int64
	cFadingDraws *obs.Counter
	cDeepFades   *obs.Counter

	// Causal provenance: spans is nil when tracing is off; curSpan is
	// the span of the frame currently being received (bound by the MAC
	// around its reception loop), so deep fades link to the frame they
	// degraded.
	spans   *span.Store
	curSpan span.ID

	// Cached path-loss slope 10·Exponent, revalidated against the live
	// Env on every use so callers that tweak Env mid-run stay correct.
	// The product is the same 10*Exponent the inline expression formed,
	// so results are bit-identical.
	slopeExp float64
	slope    float64
}

// NewChannel returns a channel over env drawing fading from rng.
func NewChannel(env Environment, rng *sim.Stream) *Channel {
	return &Channel{Env: env, rng: rng}
}

// SetRecorder attaches an observability recorder; nowNS supplies the
// simulated clock in nanoseconds (the channel deliberately has no
// kernel reference). Recording never draws from the channel's fading
// stream, so attaching a recorder cannot change propagation.
func (c *Channel) SetRecorder(rec obs.Recorder, nowNS func() int64) {
	c.rec = rec
	c.nowNS = nowNS
	if rec != nil {
		c.cFadingDraws = rec.Metrics().Counter("phy.fading_draws")
		c.cDeepFades = rec.Metrics().Counter("phy.deep_fades")
	} else {
		c.cFadingDraws = nil
		c.cDeepFades = nil
	}
}

// SetSpans attaches a causal span store; nil detaches it. nowNS
// supplies the simulated clock, exactly as in SetRecorder (span
// tracing works with the flight recorder off). Span collection never
// draws from the fading stream, so attaching a store cannot change
// propagation.
func (c *Channel) SetSpans(s *span.Store, nowNS func() int64) {
	c.spans = s
	if nowNS != nil {
		c.nowNS = nowNS
	}
}

// BindSpan declares the span of the frame whose reception is being
// evaluated; zero unbinds. The MAC brackets its per-receiver loop
// with this so channel anomalies attribute to the in-flight frame.
func (c *Channel) BindSpan(sp span.ID) { c.curSpan = sp }

// PathLossDB returns the deterministic path loss at distance d metres.
// Distances under 1 m clamp to the reference loss. (dB quantities stay
// untagged: decibels are logarithmic, so dB±dBm arithmetic is legal and
// the linear unit algebra would misjudge it.)
//
//platoonvet:unit d=m
func (c *Channel) PathLossDB(d float64) float64 {
	if d < 1 {
		d = 1
	}
	if c.slopeExp != c.Env.Exponent || c.slope == 0 {
		c.slopeExp = c.Env.Exponent
		c.slope = 10 * c.Env.Exponent
	}
	return c.Env.RefLossDB + c.slope*math.Log10(d)
}

// MeanRxPowerDBm returns the average received power (no fading draw) for a
// transmission at txDBm over d metres.
//
//platoonvet:unit d=m
func (c *Channel) MeanRxPowerDBm(txDBm, d float64) float64 {
	return txDBm - c.PathLossDB(d)
}

// RxPowerDBm draws one faded received-power sample for a transmission at
// txDBm over d metres: mean path loss, log-normal shadowing, and (if
// enabled) Rayleigh small-scale fading.
//
//platoonvet:unit d=m
func (c *Channel) RxPowerDBm(txDBm, d float64) float64 {
	p := c.MeanRxPowerDBm(txDBm, d)
	if c.Env.ShadowSigmaDB > 0 {
		p += c.rng.Normal(0, c.Env.ShadowSigmaDB)
	}
	if c.Env.RayleighFading {
		// Rayleigh amplitude with unit mean power → power gain h² with
		// E[h²]=1; in dB: 10 log10(h²).
		h := c.rng.Rayleigh(1 / math.Sqrt2)
		gain := h * h
		if gain < 1e-9 {
			gain = 1e-9
		}
		gainDB := 10 * math.Log10(gain)
		p += gainDB
		c.cFadingDraws.Inc()
		if gainDB < DeepFadeDB {
			c.cDeepFades.Inc()
			//platoonvet:alloc-ok recorder is nil unless observability is on; Enabled gates the Record call
			if c.rec != nil && c.rec.Enabled(obs.LayerPhy, obs.LevelDebug) {
				//platoonvet:alloc-ok recorder dispatch runs only when phy debug tracing is enabled
				c.rec.Record(obs.Record{
					//platoonvet:alloc-ok nowNS is a late-bound clock hook; runs only when a deep fade is recorded
					AtNS:  c.nowNS(),
					Layer: obs.LayerPhy,
					Level: obs.LevelDebug,
					Kind:  "phy.deep_fade",
					Value: gainDB,
				})
			}
			if c.spans != nil && c.curSpan != 0 && c.nowNS != nil {
				c.spans.Add(span.Span{
					Parent: c.curSpan,
					//platoonvet:alloc-ok nowNS is a late-bound clock hook; runs only when span capture is on
					AtNS:  c.nowNS(),
					Layer: obs.LayerPhy,
					Kind:  "phy.deep_fade",
					Value: gainDB,
				})
			}
		}
	}
	return p
}

// SINRdB combines a received signal power with aggregate interference and
// noise, all in dBm, returning the ratio in dB.
//
//platoonvet:hotpath -- per-reception SINR computation
func SINRdB(signalDBm, interferenceDBm, noiseDBm float64) float64 {
	in := DBmToMilliwatt(interferenceDBm) + DBmToMilliwatt(noiseDBm)
	return signalDBm - MilliwattToDBm(in)
}

// SumDBm adds powers expressed in dBm. An empty input returns -inf dBm
// (zero power).
//
//platoonvet:hotpath -- interference accumulation per reception
func SumDBm(powers ...float64) float64 {
	total := 0.0
	for _, p := range powers {
		total += DBmToMilliwatt(p)
	}
	return MilliwattToDBm(total)
}

// AddDBm adds two powers in dBm: the two-operand form of SumDBm without
// the variadic slice. AddDBm(a, b) == SumDBm(a, b) bit-for-bit — the
// variadic form folds (0 + a′) + b′ in linear milliwatts, and adding 0
// to a non-negative float is exact — so the MAC's accumulation loops
// can use it freely.
//
//platoonvet:hotpath -- interference accumulation per reception
func AddDBm(a, b float64) float64 {
	return MilliwattToDBm(DBmToMilliwatt(a) + DBmToMilliwatt(b))
}

// DBmToMilliwatt converts dBm to mW. -inf maps to 0.
func DBmToMilliwatt(dbm float64) float64 {
	if math.IsInf(dbm, -1) {
		return 0
	}
	return math.Pow(10, dbm/10)
}

// MilliwattToDBm converts mW to dBm. Non-positive power maps to -inf.
func MilliwattToDBm(mw float64) float64 {
	if mw <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(mw)
}

// NoPower is the dBm value representing zero power.
var NoPower = math.Inf(-1)

// PER returns the packet error rate for a frame of the given size at the
// given SINR, assuming QPSK with rate-1/2 coding (the 6 Mb/s 802.11p
// basic rate) and independent bit errors. The coding gain is folded into
// an effective 4 dB shift, a standard link-abstraction shortcut.
//
//platoonvet:hotpath -- per-reception loss probability
func PER(sinrDB float64, bytes int) float64 {
	if bytes <= 0 {
		return 0
	}
	effective := sinrDB + 4.0
	snr := math.Pow(10, effective/10)
	// QPSK BER = Q(sqrt(2*Eb/N0)); with 2 bits/symbol Es/N0 = 2 Eb/N0.
	ber := 0.5 * math.Erfc(math.Sqrt(snr))
	if ber <= 0 {
		return 0
	}
	bits := float64(8 * bytes)
	per := 1 - math.Pow(1-ber, bits)
	if per < 0 {
		per = 0
	}
	if per > 1 {
		per = 1
	}
	return per
}

// AirtimeNS returns the frame airtime in nanoseconds at the given PHY
// bitrate (bits per second), including the 40 µs 802.11p preamble+SIFS
// overhead.
func AirtimeNS(bytes int, bitrate float64) sim.Time {
	if bitrate <= 0 {
		panic(fmt.Sprintf("phy: non-positive bitrate %v", bitrate))
	}
	payload := float64(8*bytes) / bitrate // seconds
	const overhead = 40e-6
	return sim.FromSeconds(payload + overhead)
}
