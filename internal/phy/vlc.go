package phy

import "platoonsec/internal/sim"

// VLCLink models the visible-light channel used by the SP-VLC hybrid
// defense (Ucar et al. [2], §VI-A4 of the paper). VLC between platoon
// neighbours is:
//
//   - strictly line-of-sight and short range (taillight → camera of the
//     next vehicle), so an attacker outside the lane cannot inject or jam
//     it with RF equipment;
//   - vulnerable instead to ambient-light outage (the paper notes intense
//     sunlight can blind the receiver).
//
// Delivery is therefore a function of geometry and an ambient-outage
// process — RF jammers have no term in it.
type VLCLink struct {
	// MaxRange is the maximum usable optical range in metres.
	//platoonvet:unit m
	MaxRange float64
	// AmbientOutageProb is the per-frame probability that ambient light
	// swamps the receiver.
	AmbientOutageProb float64
	// BaseLossProb is the residual per-frame loss probability inside
	// range under good conditions.
	BaseLossProb float64
	// Bitrate is the optical link rate in bits/s.
	Bitrate float64

	rng *sim.Stream
}

// NewVLCLink returns a VLC link with published SP-VLC-like parameters:
// 30 m usable range, 2 Mb/s, 0.5% residual loss.
func NewVLCLink(rng *sim.Stream) *VLCLink {
	return &VLCLink{
		MaxRange:          30,
		AmbientOutageProb: 0.01,
		BaseLossProb:      0.005,
		Bitrate:           2e6,
		rng:               rng,
	}
}

// Deliver reports whether one frame crosses the optical link given the
// bumper-to-bumper gap between the two vehicles. Gaps outside (0,
// MaxRange] never deliver (no line of sight, or out of range).
//
//platoonvet:unit gap=m
func (v *VLCLink) Deliver(gap float64) bool {
	if gap <= 0 || gap > v.MaxRange {
		return false
	}
	if v.rng.Bernoulli(v.AmbientOutageProb) {
		return false
	}
	return !v.rng.Bernoulli(v.BaseLossProb)
}

// Airtime returns the optical airtime for a frame.
func (v *VLCLink) Airtime(bytes int) sim.Time {
	return AirtimeNS(bytes, v.Bitrate)
}
