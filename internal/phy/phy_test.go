package phy

import (
	"math"
	"testing"
	"testing/quick"

	"platoonsec/internal/sim"
)

func testChannel(fading bool) *Channel {
	env := DefaultEnvironment()
	env.RayleighFading = fading
	env.ShadowSigmaDB = 0
	return NewChannel(env, sim.NewStream(1, "phy-test"))
}

func TestPathLossMonotone(t *testing.T) {
	c := testChannel(false)
	prev := -1.0
	for _, d := range []float64{1, 5, 10, 50, 100, 500, 1000} {
		pl := c.PathLossDB(d)
		if pl <= prev {
			t.Fatalf("path loss not monotone at %v m: %v <= %v", d, pl, prev)
		}
		prev = pl
	}
}

func TestPathLossReferenceClamp(t *testing.T) {
	c := testChannel(false)
	if c.PathLossDB(0.1) != c.PathLossDB(1) {
		t.Fatal("sub-metre distances should clamp to reference loss")
	}
	if got := c.PathLossDB(1); got != c.Env.RefLossDB {
		t.Fatalf("loss at 1 m = %v, want RefLossDB %v", got, c.Env.RefLossDB)
	}
}

func TestMeanRxPower(t *testing.T) {
	c := testChannel(false)
	// At 10 m with exponent 2.4: loss = 47.86 + 24 = 71.86 dB.
	got := c.MeanRxPowerDBm(20, 10)
	want := 20 - 71.86
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("rx power = %v, want %v", got, want)
	}
}

func TestRxPowerFadingStats(t *testing.T) {
	env := DefaultEnvironment()
	env.ShadowSigmaDB = 0
	env.RayleighFading = true
	c := NewChannel(env, sim.NewStream(2, "fading"))
	// Rayleigh power gain has unit mean: average linear rx power should
	// match the deterministic mean within a few percent.
	mean := c.MeanRxPowerDBm(20, 50)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += DBmToMilliwatt(c.RxPowerDBm(20, 50))
	}
	avg := MilliwattToDBm(sum / n)
	if math.Abs(avg-mean) > 0.3 {
		t.Fatalf("faded mean = %v dBm, want ~%v dBm", avg, mean)
	}
}

func TestDBmConversionsRoundTrip(t *testing.T) {
	f := func(raw int16) bool {
		dbm := float64(raw) / 100 // -327..327 dBm
		back := MilliwattToDBm(DBmToMilliwatt(dbm))
		return math.Abs(back-dbm) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if DBmToMilliwatt(NoPower) != 0 {
		t.Fatal("NoPower should convert to 0 mW")
	}
	if !math.IsInf(MilliwattToDBm(0), -1) {
		t.Fatal("0 mW should convert to -inf dBm")
	}
}

func TestSumDBm(t *testing.T) {
	// 0 dBm + 0 dBm = 3.01 dBm.
	got := SumDBm(0, 0)
	if math.Abs(got-3.0103) > 0.001 {
		t.Fatalf("0+0 dBm = %v, want ~3.01", got)
	}
	if !math.IsInf(SumDBm(), -1) {
		t.Fatal("empty sum should be -inf")
	}
	// Adding zero power changes nothing.
	if got := SumDBm(-90, NoPower); math.Abs(got+90) > 1e-9 {
		t.Fatalf("sum with NoPower = %v, want -90", got)
	}
}

func TestSINRdB(t *testing.T) {
	// Signal -70, noise -99, no interference → ~29 dB.
	got := SINRdB(-70, NoPower, -99)
	if math.Abs(got-29) > 1e-6 {
		t.Fatalf("SINR = %v, want 29", got)
	}
	// Strong interference dominates noise: signal -70, interference -72
	// → just under 2 dB.
	got = SINRdB(-70, -72, -99)
	if got >= 2 || got < 1.9 {
		t.Fatalf("SINR = %v, want just under 2", got)
	}
}

func TestPERShape(t *testing.T) {
	const size = 300
	// High SINR → essentially error free.
	if per := PER(25, size); per > 1e-6 {
		t.Fatalf("PER at 25 dB = %v, want ~0", per)
	}
	// Very low SINR → certain loss.
	if per := PER(-10, size); per < 0.999 {
		t.Fatalf("PER at -10 dB = %v, want ~1", per)
	}
	// Monotone decreasing in SINR.
	prev := 1.1
	for s := -10.0; s <= 30; s += 1 {
		per := PER(s, size)
		if per > prev+1e-12 {
			t.Fatalf("PER not monotone at %v dB", s)
		}
		prev = per
	}
	// Longer frames fail more.
	if PER(5, 1000) <= PER(5, 100) {
		t.Fatal("longer frame should have higher PER")
	}
	if PER(5, 0) != 0 {
		t.Fatal("zero-length frame should have PER 0")
	}
}

func TestAirtime(t *testing.T) {
	// 300 bytes at 6 Mb/s = 400 µs + 40 µs overhead.
	at := AirtimeNS(300, 6e6)
	want := sim.FromSeconds(440e-6)
	if at != want {
		t.Fatalf("airtime = %v, want %v", at, want)
	}
}

func TestAirtimePanicsOnBadBitrate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AirtimeNS(100, 0)
}

func TestVLCGeometry(t *testing.T) {
	v := NewVLCLink(sim.NewStream(3, "vlc"))
	v.AmbientOutageProb = 0
	v.BaseLossProb = 0
	if !v.Deliver(10) {
		t.Fatal("in-range VLC frame lost with zero loss probs")
	}
	if v.Deliver(50) {
		t.Fatal("beyond-range VLC frame delivered")
	}
	if v.Deliver(0) || v.Deliver(-3) {
		t.Fatal("non-positive gap delivered")
	}
}

func TestVLCOutage(t *testing.T) {
	v := NewVLCLink(sim.NewStream(3, "vlc2"))
	v.AmbientOutageProb = 1
	if v.Deliver(10) {
		t.Fatal("frame delivered through full ambient outage")
	}
}

func TestVLCLossRate(t *testing.T) {
	v := NewVLCLink(sim.NewStream(3, "vlc3"))
	v.AmbientOutageProb = 0.1
	v.BaseLossProb = 0
	lost := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if !v.Deliver(10) {
			lost++
		}
	}
	rate := float64(lost) / n
	if math.Abs(rate-0.1) > 0.01 {
		t.Fatalf("loss rate = %v, want ~0.1", rate)
	}
}

func TestVLCAirtime(t *testing.T) {
	v := NewVLCLink(sim.NewStream(3, "vlc4"))
	if v.Airtime(100) <= 0 {
		t.Fatal("non-positive airtime")
	}
}
