package attack_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"platoonsec/internal/taxonomy"
)

// The injection-site mapping lives in taxonomy.AttackClass.Injects —
// each Table II row names the functions in this package that put its
// adversary-controlled data into the world. The taint analyzer seeds
// at exactly those (via //platoonvet:taint-source doc directives), so
// the taxonomy rows are the coverage contract: adding an attack, or a
// new injection path to an existing one, must extend them or the test
// fails. Eavesdropping deliberately lists none — it is the one purely
// passive row (confidentiality loss, no injected data).

// radioPrimitives are the package's frame-emission primitives: any
// function calling one is an injection path and must be a declared
// taint source (or be a primitive itself — they are annotated too).
var radioPrimitives = map[string]bool{
	"SendRaw":      true,
	"SendEnvelope": true,
	"Forge":        true,
}

// parseAttackPackage parses every non-test source file of this package
// with comments.
func parseAttackPackage(t *testing.T) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(".", name), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatal("no attack package sources found")
	}
	return fset, files
}

// funcKey renders "Type.Name" for methods, "Name" for functions.
func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if se, ok := t.(*ast.StarExpr); ok {
		t = se.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

func hasTaintSource(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == "//platoonvet:taint-source" ||
			strings.HasPrefix(c.Text, "//platoonvet:taint-source ") {
			return true
		}
	}
	return false
}

// TestEveryInjectionSiteIsATaintSource is the Table II coverage pin:
// every declared injection site carries the taint-source directive,
// every caller of a radio primitive is a declared injection site, and
// the mapping covers every taxonomy row.
func TestEveryInjectionSiteIsATaintSource(t *testing.T) {
	_, files := parseAttackPackage(t)

	annotated := map[string]bool{}
	decls := map[string]*ast.FuncDecl{}
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			key := funcKey(fd)
			decls[key] = fd
			if hasTaintSource(fd) {
				annotated[key] = true
			}
		}
	}

	// 1. Every taxonomy row's injection sites exist and are declared
	// taint sources.
	rows := taxonomy.Attacks()
	for _, row := range rows {
		for _, site := range row.Injects {
			if _, ok := decls[site]; !ok {
				t.Errorf("%s: mapped injection site %s does not exist", row.Key, site)
				continue
			}
			if !annotated[site] {
				t.Errorf("%s: injection site %s lacks a //platoonvet:taint-source directive", row.Key, site)
			}
		}
	}

	// 2. No injection path escapes the mapping: any function calling a
	// radio primitive must be listed by some Table II row.
	mapped := map[string]bool{}
	for _, row := range rows {
		for _, s := range row.Injects {
			mapped[s] = true
		}
	}
	for key, fd := range decls {
		if fd.Body == nil {
			continue
		}
		callsPrimitive := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.SelectorExpr:
				if radioPrimitives[fun.Sel.Name] {
					callsPrimitive = true
				}
			case *ast.Ident:
				if radioPrimitives[fun.Name] {
					callsPrimitive = true
				}
			}
			return true
		})
		if !callsPrimitive {
			continue
		}
		if _, isPrimitive := radioPrimitives[fd.Name.Name]; isPrimitive {
			if !annotated[key] {
				t.Errorf("radio primitive %s lacks a //platoonvet:taint-source directive", key)
			}
			continue
		}
		if !annotated[key] {
			t.Errorf("%s calls a radio primitive but lacks a //platoonvet:taint-source directive", key)
		}
		if !mapped[key] {
			t.Errorf("%s calls a radio primitive but is not in the Injects list of any Table II taxonomy row", key)
		}
	}
}
