package attack

import (
	"platoonsec/internal/mac"
	"platoonsec/internal/message"
	"platoonsec/internal/sim"
)

// Replay records platoon frames off the air and re-injects them later,
// byte for byte (§V-A1). Because the frames were genuine, they carry
// valid signatures — only freshness checks (timestamps/sequence numbers,
// §VI-A1) defeat the attack. Against an encrypted platoon the recorded
// ciphertext replays equally well, which is why encryption alone is not
// replay protection.
type Replay struct {
	// RecordFor is how long the attacker listens before replaying.
	RecordFor sim.Time
	// ReplayPeriod is the interval between injected frames.
	ReplayPeriod sim.Time
	// MaxRecorded bounds the capture buffer.
	MaxRecorded int
	// KindFilter, when non-zero, records only envelopes of this kind
	// (decodable traffic only; encrypted frames are recorded regardless
	// because the attacker cannot classify them).
	KindFilter message.Kind

	radio    *Radio
	k        *sim.Kernel
	captured [][]byte
	next     int
	ticker   *sim.Ticker
	started  bool

	// Recorded counts captured frames; Replayed counts injections.
	Recorded, Replayed uint64
}

var _ Attack = (*Replay)(nil)

// NewReplay builds a replay attacker using the given radio.
func NewReplay(k *sim.Kernel, radio *Radio) *Replay {
	return &Replay{
		RecordFor:    5 * sim.Second,
		ReplayPeriod: 200 * sim.Millisecond,
		MaxRecorded:  512,
		radio:        radio,
		k:            k,
	}
}

// Name implements Attack.
func (r *Replay) Name() string { return "replay" }

// Start implements Attack.
func (r *Replay) Start() error {
	if r.started {
		return errAlreadyStarted("replay")
	}
	if err := r.radio.Start(r.onRx); err != nil {
		return err
	}
	r.started = true
	start := r.k.Now() + r.RecordFor
	r.ticker = r.k.Every(start, r.ReplayPeriod, "attack.replay", r.injectOne)
	return nil
}

// Stop implements Attack.
func (r *Replay) Stop() {
	if r.ticker != nil {
		r.ticker.Stop()
		r.ticker = nil
	}
	r.radio.Stop()
	r.started = false
}

func (r *Replay) onRx(rx mac.Rx) {
	if len(r.captured) >= r.MaxRecorded {
		return
	}
	if r.KindFilter != 0 {
		env, err := message.UnmarshalEnvelope(rx.Payload)
		if err == nil {
			if kind, kerr := env.Kind(); kerr == nil && kind != r.KindFilter {
				return
			}
		}
	}
	//platoonvet:alloc-ok the copy is mandatory: the MAC reuses its rx payload buffer after delivery returns
	cp := make([]byte, len(rx.Payload))
	copy(cp, rx.Payload)
	r.captured = append(r.captured, cp)
	r.Recorded++
}

//platoonvet:taint-source -- captured frames re-sent verbatim (Table II replay)
func (r *Replay) injectOne() {
	if len(r.captured) == 0 {
		return
	}
	frame := r.captured[r.next%len(r.captured)]
	r.next++
	r.radio.SendRaw(frame)
	r.Replayed++
}

func errAlreadyStarted(name string) error {
	return &startedError{name: name}
}

type startedError struct{ name string }

func (e *startedError) Error() string { return "attack: " + e.name + " already started" }
