package attack

import (
	"platoonsec/internal/message"
	"platoonsec/internal/sim"
)

// FakeManeuverKind selects the forged maneuver variant (§V-A3).
type FakeManeuverKind int

// Forged maneuver variants.
const (
	// FakeEntrance forges a gap-open command: a member opens a hole for
	// an entering vehicle that never arrives, cutting efficiency.
	FakeEntrance FakeManeuverKind = iota + 1
	// FakeLeave forges a leave request from a victim member; the leader
	// ejects it from the roster.
	FakeLeave
	// FakeSplit forges a leader split command, fragmenting the platoon.
	FakeSplit
	// FakeDissolve forges a leader dissolve, breaking the platoon into
	// individual vehicles.
	FakeDissolve
)

func (k FakeManeuverKind) String() string {
	switch k {
	case FakeEntrance:
		return "fake-entrance"
	case FakeLeave:
		return "fake-leave"
	case FakeSplit:
		return "fake-split"
	case FakeDissolve:
		return "fake-dissolve"
	default:
		return "fake-unknown"
	}
}

// FakeManeuver injects forged maneuver messages. The forgery claims
// SpoofSender (the leader for split/dissolve/entrance, the victim for
// leave). Without signatures the platoon obeys; with them the envelope
// fails verification — exactly the §VI-A1 claim the E3 matrix measures.
type FakeManeuver struct {
	// Kind selects the variant.
	Kind FakeManeuverKind
	// PlatoonID is the target platoon.
	PlatoonID uint32
	// SpoofSender is the identity the forgery claims.
	SpoofSender uint32
	// VictimID is the member attacked (FakeLeave: ejected member;
	// FakeEntrance: member told to open the gap).
	VictimID uint32
	// Slot is the split index for FakeSplit.
	Slot uint16
	// GapMetres is the hole size for FakeEntrance.
	GapMetres float64
	// Period between injections (repeating keeps the platoon broken
	// even if it starts to recover).
	Period sim.Time
	// MaxShots bounds the number of injections (0 = unlimited). A
	// single shot measures how long the platoon needs to recover
	// (§V-A3: detached members "will then need to reconnect, thus
	// decreasing efficiency").
	MaxShots uint64

	radio   *Radio
	k       *sim.Kernel
	seq     uint32
	ticker  *sim.Ticker
	started bool

	// Sent counts forged maneuvers injected.
	Sent uint64
}

var _ Attack = (*FakeManeuver)(nil)

// NewFakeManeuver builds a forged-maneuver attacker.
func NewFakeManeuver(k *sim.Kernel, radio *Radio, kind FakeManeuverKind, platoonID uint32) *FakeManeuver {
	return &FakeManeuver{
		Kind:      kind,
		PlatoonID: platoonID,
		Period:    2 * sim.Second,
		radio:     radio,
		k:         k,
	}
}

// Name implements Attack.
func (f *FakeManeuver) Name() string { return f.Kind.String() }

// Start implements Attack.
func (f *FakeManeuver) Start() error {
	if f.started {
		return errAlreadyStarted(f.Name())
	}
	if err := f.radio.Start(nil); err != nil {
		return err
	}
	f.started = true
	f.ticker = f.k.Every(f.k.Now(), f.Period, "attack.fakemaneuver", f.inject)
	return nil
}

// Stop implements Attack.
func (f *FakeManeuver) Stop() {
	if f.ticker != nil {
		f.ticker.Stop()
		f.ticker = nil
	}
	f.radio.Stop()
	f.started = false
}

//platoonvet:taint-source -- forged maneuver commands (Table II fake maneuver)
func (f *FakeManeuver) inject() {
	if f.MaxShots > 0 && f.Sent >= f.MaxShots {
		if f.ticker != nil {
			f.ticker.Stop()
			f.ticker = nil
		}
		return
	}
	f.seq += 1000 // jump well past plausible sequence space
	//platoonvet:alloc-ok one forged maneuver per injection; the attack rate is Hz-scale
	m := &message.Maneuver{
		PlatoonID:  f.PlatoonID,
		Seq:        f.seq,
		TimestampN: int64(f.k.Now()),
	}
	switch f.Kind {
	case FakeEntrance:
		m.Type = message.ManeuverGapOpen
		m.VehicleID = f.SpoofSender
		m.TargetID = f.VictimID
		m.Param = f.GapMetres
	case FakeLeave:
		m.Type = message.ManeuverLeaveRequest
		m.VehicleID = f.VictimID // claim to BE the victim
	case FakeSplit:
		m.Type = message.ManeuverSplit
		m.VehicleID = f.SpoofSender
		m.Slot = f.Slot
	case FakeDissolve:
		m.Type = message.ManeuverDissolve
		m.VehicleID = f.SpoofSender
	default:
		return
	}
	sender := m.VehicleID
	f.radio.SendEnvelope(Forge(sender, m.Marshal()))
	f.Sent++
}
