package attack

import (
	"platoonsec/internal/message"
	"platoonsec/internal/security"
	"platoonsec/internal/sim"
)

// Impersonation operates under a victim's identity (§V-F). Two modes:
//
//   - without key material (StolenIdentity nil): the attacker merely
//     claims the victim's ID in unsigned envelopes — enough against an
//     open platoon, rejected by any verifier;
//   - with stolen key material: envelopes verify, and only behavioural
//     defenses (trust manager, VPD-ADA) or revocation can respond. The
//     paper notes the fallout lands on the victim — "increased charges …
//     heavily damaged reputation … even arrest" — which the trust
//     experiments reproduce as the victim's score collapsing.
//
// The concrete mischief injected here is a leave request in the
// victim's name plus disturbed beacons attributed to the victim.
type Impersonation struct {
	// VictimID is the identity being worn.
	VictimID uint32
	// PlatoonID is the target platoon.
	PlatoonID uint32
	// StolenIdentity, when non-nil, signs the forgeries with the
	// victim's actual key (the stolen/copied ID case).
	StolenIdentity *security.Identity
	// Period is the injection interval.
	Period sim.Time
	// SendLeave controls whether a forged leave request is included.
	SendLeave bool
	// BeaconLie perturbs the victim-attributed beacons: claimed hard
	// braking at a wrong position.
	BeaconLie bool

	radio     *Radio
	k         *sim.Kernel
	seq       uint32
	ticker    *sim.Ticker
	started   bool
	sentLeave bool

	// Sent counts injected forgeries.
	Sent uint64
}

var _ Attack = (*Impersonation)(nil)

// NewImpersonation builds an impersonation attacker.
func NewImpersonation(k *sim.Kernel, radio *Radio, platoonID, victimID uint32) *Impersonation {
	return &Impersonation{
		VictimID:  victimID,
		PlatoonID: platoonID,
		Period:    500 * sim.Millisecond,
		SendLeave: true,
		BeaconLie: true,
		radio:     radio,
		k:         k,
	}
}

// Name implements Attack.
func (im *Impersonation) Name() string { return "impersonation" }

// Start implements Attack.
func (im *Impersonation) Start() error {
	if im.started {
		return errAlreadyStarted("impersonation")
	}
	if err := im.radio.Start(nil); err != nil {
		return err
	}
	im.started = true
	im.seq = 100000 // clear of the victim's real sequence space
	im.ticker = im.k.Every(im.k.Now(), im.Period, "attack.impersonate", im.inject)
	return nil
}

// Stop implements Attack.
func (im *Impersonation) Stop() {
	if im.ticker != nil {
		im.ticker.Stop()
		im.ticker = nil
	}
	im.radio.Stop()
	im.started = false
}

//platoonvet:taint-source -- frames sent under the victim's stolen identity (Table II impersonation)
func (im *Impersonation) send(payload []byte) {
	var env *message.Envelope
	if im.StolenIdentity != nil {
		env = security.NewSigner(im.StolenIdentity).Seal(payload)
	} else {
		env = Forge(im.VictimID, payload)
	}
	im.radio.SendEnvelope(env)
	im.Sent++
}

func (im *Impersonation) inject() {
	now := im.k.Now()
	if im.SendLeave && !im.sentLeave {
		im.seq++
		m := &message.Maneuver{
			Type:       message.ManeuverLeaveRequest,
			VehicleID:  im.VictimID,
			PlatoonID:  im.PlatoonID,
			Seq:        im.seq,
			TimestampN: int64(now),
		}
		im.send(m.Marshal())
		im.sentLeave = true
		return
	}
	if im.BeaconLie {
		im.seq++
		//platoonvet:alloc-ok one forged beacon per attack period (Hz-scale), not per simulation event
		b := &message.Beacon{
			VehicleID:  im.VictimID,
			PlatoonID:  im.PlatoonID,
			Seq:        im.seq,
			TimestampN: int64(now),
			Role:       message.RoleMember,
			Position:   0, // absurd position: reputation poison
			Speed:      0,
			Accel:      -8,
		}
		im.send(b.Marshal())
	}
}
