package attack

import (
	"platoonsec/internal/message"
	"platoonsec/internal/sim"
)

// DoSFlood denies platoon service by flooding the leader with join
// requests from fabricated identities (§V-D: "getting fake or copied
// IDs to connect to make a platoon leader think that there are far more
// members than there are. This will prevent other members from
// connecting"). The flood has two effects the experiments separate:
//
//   - protocol-level: the leader's pending-join table and roster quota
//     fill with phantoms, so genuine joiners are denied;
//   - channel-level: at high rates the request traffic itself consumes
//     airtime and collides with beacons.
type DoSFlood struct {
	// PlatoonID is the target platoon.
	PlatoonID uint32
	// FirstFakeID seeds the fabricated identity range.
	FirstFakeID uint32
	// RequestPeriod is the flood inter-arrival time.
	RequestPeriod sim.Time
	// PaddingBytes inflates each request to burn extra airtime.
	PaddingBytes int

	radio   *Radio
	k       *sim.Kernel
	nextID  uint32
	seq     uint32
	ticker  *sim.Ticker
	started bool

	// Sent counts flood requests injected.
	Sent uint64
}

var _ Attack = (*DoSFlood)(nil)

// NewDoSFlood builds a join-flood attacker at 20 requests/second.
func NewDoSFlood(k *sim.Kernel, radio *Radio, platoonID uint32, firstFakeID uint32) *DoSFlood {
	return &DoSFlood{
		PlatoonID:     platoonID,
		FirstFakeID:   firstFakeID,
		RequestPeriod: 50 * sim.Millisecond,
		radio:         radio,
		k:             k,
	}
}

// Name implements Attack.
func (d *DoSFlood) Name() string { return "dos" }

// Start implements Attack.
func (d *DoSFlood) Start() error {
	if d.started {
		return errAlreadyStarted("dos")
	}
	if err := d.radio.Start(nil); err != nil {
		return err
	}
	d.started = true
	d.nextID = d.FirstFakeID
	d.ticker = d.k.Every(d.k.Now(), d.RequestPeriod, "attack.dos", d.inject)
	return nil
}

// Stop implements Attack.
func (d *DoSFlood) Stop() {
	if d.ticker != nil {
		d.ticker.Stop()
		d.ticker = nil
	}
	d.radio.Stop()
	d.started = false
}

//platoonvet:taint-source -- the flood payload burst of the DoS attack (Table II)
func (d *DoSFlood) inject() {
	d.seq++
	m := &message.Maneuver{
		Type:       message.ManeuverJoinRequest,
		VehicleID:  d.nextID,
		PlatoonID:  d.PlatoonID,
		Seq:        d.seq,
		TimestampN: int64(d.k.Now()),
	}
	d.nextID++
	env := Forge(m.VehicleID, m.Marshal())
	wire := env.Marshal()
	if d.PaddingBytes > 0 {
		//platoonvet:alloc-ok flood frames are built per injection by design; padding sizes the frame, not a reusable buffer
		wire = append(wire, make([]byte, d.PaddingBytes)...)
	}
	d.radio.SendRaw(wire)
	d.Sent++
}
