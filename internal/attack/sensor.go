package attack

import (
	"platoonsec/internal/sim"
	"platoonsec/internal/vehicle"
)

// GPSSpoof executes the overpowered-signal pull-off attack on one
// vehicle's GPS receiver (§V-G): the attacker first mirrors the true
// position ("often starts very close to the victim vehicle"), then
// drifts the reported fix away at DriftRate while the receiver stays
// locked to the stronger forged signal.
type GPSSpoof struct {
	// GPS is the victim receiver.
	GPS *vehicle.GPS
	// DriftRate is how fast the reported position diverges, m/s.
	DriftRate float64

	k       *sim.Kernel
	startAt sim.Time
	started bool
}

var _ Attack = (*GPSSpoof)(nil)

// NewGPSSpoof builds a GPS spoofing attack against the given receiver.
func NewGPSSpoof(k *sim.Kernel, gps *vehicle.GPS, driftRate float64) *GPSSpoof {
	return &GPSSpoof{GPS: gps, DriftRate: driftRate, k: k}
}

// Name implements Attack.
func (g *GPSSpoof) Name() string { return "gps-spoofing" }

// Start implements Attack.
//
//platoonvet:taint-source -- spoofed GPS fixes corrupt the position source (Table II sensor spoofing)
func (g *GPSSpoof) Start() error {
	if g.started {
		return errAlreadyStarted("gps-spoofing")
	}
	g.started = true
	g.startAt = g.k.Now()
	g.GPS.Spoof(func(truth vehicle.State) vehicle.GPSFix {
		elapsed := (g.k.Now() - g.startAt).Seconds()
		return vehicle.GPSFix{
			Position: truth.Position + g.DriftRate*elapsed,
			Speed:    truth.Speed + g.DriftRate, // spoofed Doppler
			Valid:    true,
		}
	})
	return nil
}

// Stop implements Attack.
func (g *GPSSpoof) Stop() {
	if g.started {
		g.GPS.Spoof(nil)
		g.started = false
	}
}

// Offset reports the current spoofed position offset in metres.
func (g *GPSSpoof) Offset() float64 {
	if !g.started {
		return 0
	}
	return g.DriftRate * (g.k.Now() - g.startAt).Seconds()
}

// SensorBlind blinds a victim's forward ranging sensor with a laser or
// high-powered light source (§V-G: "high powered torches and lasers can
// blind cameras either partially or entirely"). While blinded the
// sensor returns no readings and the victim's controller loses its gap
// measurement.
type SensorBlind struct {
	// Ranger is the victim sensor.
	Ranger *vehicle.Ranger

	started bool
}

var _ Attack = (*SensorBlind)(nil)

// NewSensorBlind builds a sensor blinding attack.
func NewSensorBlind(r *vehicle.Ranger) *SensorBlind { return &SensorBlind{Ranger: r} }

// Name implements Attack.
func (s *SensorBlind) Name() string { return "sensor-jamming" }

// Start implements Attack.
//
//platoonvet:taint-source -- blinds the ranger so control runs on communicated claims alone (Table II sensor spoofing)
func (s *SensorBlind) Start() error {
	if s.started {
		return errAlreadyStarted("sensor-jamming")
	}
	s.Ranger.SetBlinded(true)
	s.started = true
	return nil
}

// Stop implements Attack.
func (s *SensorBlind) Stop() {
	if s.started {
		s.Ranger.SetBlinded(false)
		s.started = false
	}
}

// GPSJam denies the victim any GPS fix at all (receiver jamming).
type GPSJam struct {
	// GPS is the victim receiver.
	GPS *vehicle.GPS

	started bool
}

var _ Attack = (*GPSJam)(nil)

// NewGPSJam builds a GPS jamming attack.
func NewGPSJam(gps *vehicle.GPS) *GPSJam { return &GPSJam{GPS: gps} }

// Name implements Attack.
func (g *GPSJam) Name() string { return "gps-jamming" }

// Start implements Attack.
//
//platoonvet:taint-source -- denies GPS so agents lean on attacker-reachable channels (Table II sensor spoofing)
func (g *GPSJam) Start() error {
	if g.started {
		return errAlreadyStarted("gps-jamming")
	}
	g.GPS.SetJammed(true)
	g.started = true
	return nil
}

// Stop implements Attack.
func (g *GPSJam) Stop() {
	if g.started {
		g.GPS.SetJammed(false)
		g.started = false
	}
}
