package attack_test

import (
	"math"
	"testing"

	"platoonsec/internal/attack"
	"platoonsec/internal/mac"
	"platoonsec/internal/message"
	"platoonsec/internal/platoon"
	"platoonsec/internal/sim"
	"platoonsec/internal/testworld"
	"platoonsec/internal/vehicle"
)

// attackerPos parks the attacker on the shoulder near the platoon.
func attackerPos(w *testworld.World) func() float64 {
	return func() float64 {
		if len(w.Vehs) == 0 {
			return 0
		}
		return w.Vehs[0].State().Position - 60
	}
}

// runWithSpacingTrace runs the world, sampling the worst spacing error
// every 100 ms, and returns the maximum observed.
func runWithSpacingTrace(t *testing.T, w *testworld.World, target float64, until sim.Time) float64 {
	t.Helper()
	worst := 0.0
	w.K.Every(0, 100*sim.Millisecond, "sample", func() {
		if e := w.MaxSpacingError(target); e > worst {
			worst = e
		}
	})
	if err := w.K.Run(until); err != nil {
		t.Fatal(err)
	}
	return worst
}

// steppedProfile speeds the leader up at t=10 s (gives a replay attacker
// stale-but-plausible material).
func steppedProfile(now sim.Time) float64 {
	if now > 10*sim.Second {
		return 28
	}
	return 22
}

func TestReplayDestabilisesPlatoon(t *testing.T) {
	cfg := platoon.DefaultConfig()
	cfg.CruiseSpeed = 22

	run := func(withAttack bool) float64 {
		w := testworld.New(1)
		// Leader accelerates at t=10 s, so frames recorded before then
		// are stale lies when replayed after.
		_, _, err := w.BuildPlatoon(6, cfg, nil, platoon.WithSpeedProfile(steppedProfile))
		if err != nil {
			t.Fatal(err)
		}
		if withAttack {
			radio := attack.NewRadio(w.K, w.Bus, 900, attackerPos(w), 23)
			rp := attack.NewReplay(w.K, radio)
			rp.RecordFor = 8 * sim.Second
			rp.ReplayPeriod = 30 * sim.Millisecond
			w.K.At(0, "arm", func() {
				if err := rp.Start(); err != nil {
					t.Error(err)
				}
			})
		}
		// Measure only after the speed step has settled in the baseline.
		worst := 0.0
		w.K.Every(20*sim.Second, 100*sim.Millisecond, "sample", func() {
			if e := w.MaxSpacingError(cfg.DesiredGap); e > worst {
				worst = e
			}
		})
		if err := w.K.Run(45 * sim.Second); err != nil {
			t.Fatal(err)
		}
		return worst
	}

	baseline := run(false)
	attacked := run(true)
	if attacked <= baseline*1.5 {
		t.Fatalf("replay attack spacing error %.2f m not clearly worse than baseline %.2f m", attacked, baseline)
	}
}

func TestSybilFillsRoster(t *testing.T) {
	w := testworld.New(2)
	cfg := platoon.DefaultConfig()
	cfg.MaxMembers = 8
	leader, _, err := w.BuildPlatoon(4, cfg, nil) // 3 genuine members
	if err != nil {
		t.Fatal(err)
	}
	radio := attack.NewRadio(w.K, w.Bus, 900, attackerPos(w), 23)
	sy := attack.NewSybil(w.K, radio, cfg.PlatoonID, 500, 5)
	w.K.At(2*sim.Second, "arm", func() {
		if err := sy.Start(); err != nil {
			t.Error(err)
		}
	})
	if err := w.K.Run(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if sy.Admitted != 5 {
		t.Fatalf("ghosts admitted = %d, want 5", sy.Admitted)
	}
	roster := leader.Roster()
	ghosts := 0
	for _, id := range roster {
		if id >= 500 {
			ghosts++
		}
	}
	if ghosts != 5 {
		t.Fatalf("roster %v contains %d ghosts, want 5", roster, ghosts)
	}

	// A genuine joiner is now denied: roster 3+5 = MaxMembers.
	joiner := w.AddVehicle(40, w.Vehs[len(w.Vehs)-1].State().Position-60, cfg.CruiseSpeed, message.RoleFree, cfg)
	if err := joiner.Start(); err != nil {
		t.Fatal(err)
	}
	w.K.At(w.K.Now()+sim.Second, "join", joiner.RequestJoin)
	if err := w.K.Run(w.K.Now() + 15*sim.Second); err != nil {
		t.Fatal(err)
	}
	if joiner.Role() != message.RoleFree {
		t.Fatalf("genuine joiner admitted despite Sybil-filled roster: %v", joiner.Role())
	}
	if leader.Counters().JoinsDenied == 0 {
		t.Fatal("no join denial recorded")
	}
}

func TestFakeSplitFragmentsPlatoon(t *testing.T) {
	w := testworld.New(3)
	cfg := platoon.DefaultConfig()
	_, members, err := w.BuildPlatoon(6, cfg, nil) // 5 members
	if err != nil {
		t.Fatal(err)
	}
	radio := attack.NewRadio(w.K, w.Bus, 900, attackerPos(w), 23)
	fm := attack.NewFakeManeuver(w.K, radio, attack.FakeSplit, cfg.PlatoonID)
	fm.SpoofSender = 1 // claim to be the leader
	fm.Slot = 2
	w.K.At(5*sim.Second, "arm", func() {
		if err := fm.Start(); err != nil {
			t.Error(err)
		}
	})
	if err := w.K.Run(15 * sim.Second); err != nil {
		t.Fatal(err)
	}
	free := 0
	for _, m := range members {
		if m.Role() == message.RoleFree {
			free++
		}
	}
	if free != 3 {
		t.Fatalf("fake split detached %d members, want 3 (slots 2..4)", free)
	}
	if fm.Sent == 0 {
		t.Fatal("no forgeries recorded")
	}
}

func TestFakeLeaveEjectsVictim(t *testing.T) {
	w := testworld.New(4)
	cfg := platoon.DefaultConfig()
	leader, members, err := w.BuildPlatoon(5, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	victim := members[1]
	radio := attack.NewRadio(w.K, w.Bus, 900, attackerPos(w), 23)
	fm := attack.NewFakeManeuver(w.K, radio, attack.FakeLeave, cfg.PlatoonID)
	fm.VictimID = victim.ID()
	w.K.At(5*sim.Second, "arm", func() {
		if err := fm.Start(); err != nil {
			t.Error(err)
		}
	})
	if err := w.K.Run(15 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if victim.Role() != message.RoleFree {
		t.Fatalf("victim role = %v, want ejected (free)", victim.Role())
	}
	for _, id := range leader.Roster() {
		if id == victim.ID() {
			t.Fatal("victim still in roster")
		}
	}
}

func TestFakeEntranceOpensPhantomGap(t *testing.T) {
	w := testworld.New(5)
	cfg := platoon.DefaultConfig()
	cfg.GapOpenTimeout = 0 // undefended: gap stays open
	_, members, err := w.BuildPlatoon(4, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	victim := members[1]
	radio := attack.NewRadio(w.K, w.Bus, 900, attackerPos(w), 23)
	fm := attack.NewFakeManeuver(w.K, radio, attack.FakeEntrance, cfg.PlatoonID)
	fm.SpoofSender = 1
	fm.VictimID = victim.ID()
	fm.GapMetres = 30
	w.K.At(5*sim.Second, "arm", func() {
		if err := fm.Start(); err != nil {
			t.Error(err)
		}
	})
	if err := w.K.Run(45 * sim.Second); err != nil {
		t.Fatal(err)
	}
	gap := victim.Vehicle().Gap(members[0].Vehicle())
	if gap < 25 {
		t.Fatalf("phantom entrance gap = %.1f m, want ~30", gap)
	}
}

func TestFakeDissolveBreaksPlatoon(t *testing.T) {
	w := testworld.New(6)
	cfg := platoon.DefaultConfig()
	_, members, err := w.BuildPlatoon(4, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	radio := attack.NewRadio(w.K, w.Bus, 900, attackerPos(w), 23)
	fm := attack.NewFakeManeuver(w.K, radio, attack.FakeDissolve, cfg.PlatoonID)
	fm.SpoofSender = 1
	w.K.At(5*sim.Second, "arm", func() {
		if err := fm.Start(); err != nil {
			t.Error(err)
		}
	})
	if err := w.K.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	for i, m := range members {
		if m.Role() != message.RoleFree {
			t.Fatalf("member %d survived fake dissolve: %v", i, m.Role())
		}
	}
}

func TestJammingDisbandsPlatoon(t *testing.T) {
	w := testworld.New(7)
	cfg := platoon.DefaultConfig()
	_, members, err := w.BuildPlatoon(5, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	jam := attack.NewJamming(w.K, w.Bus, 1950, 40, mac.JamConstant)
	w.K.At(5*sim.Second, "arm", func() {
		if err := jam.Start(); err != nil {
			t.Error(err)
		}
	})
	if err := w.K.Run(15 * sim.Second); err != nil {
		t.Fatal(err)
	}
	for i, m := range members {
		if !m.Disbanded() {
			t.Fatalf("member %d not disbanded under 40 dBm jamming", i)
		}
	}
	// Jammer leaves; leader beacons get through again and the platoon
	// reforms.
	jam.Stop()
	if err := w.K.Run(w.K.Now() + 10*sim.Second); err != nil {
		t.Fatal(err)
	}
	for i, m := range members {
		if m.Disbanded() {
			t.Fatalf("member %d still disbanded after jammer stopped", i)
		}
	}
}

func TestEavesdropOpenPlatoon(t *testing.T) {
	w := testworld.New(8)
	cfg := platoon.DefaultConfig()
	_, _, err := w.BuildPlatoon(4, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	radio := attack.NewRadio(w.K, w.Bus, 900, attackerPos(w), 23)
	ev := attack.NewEavesdrop(radio)
	if err := ev.Start(); err != nil {
		t.Fatal(err)
	}
	if err := w.K.Run(20 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if y := ev.InfoYield(); y < 0.99 {
		t.Fatalf("open-platoon info yield = %v, want ~1", y)
	}
	tracks := ev.Tracks()
	if len(tracks) != 4 {
		t.Fatalf("tracked %d vehicles, want 4", len(tracks))
	}
	for _, tr := range tracks {
		if tr.Fixes < 50 {
			t.Fatalf("track %d has %d fixes, want continuous tracking", tr.VehicleID, tr.Fixes)
		}
		if tr.LastPos <= tr.FirstPos {
			t.Fatalf("track %d did not move forward", tr.VehicleID)
		}
	}
}

func TestDoSFloodDeniesGenuineJoiner(t *testing.T) {
	w := testworld.New(9)
	cfg := platoon.DefaultConfig()
	leader, _, err := w.BuildPlatoon(3, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	radio := attack.NewRadio(w.K, w.Bus, 900, attackerPos(w), 23)
	dos := attack.NewDoSFlood(w.K, radio, cfg.PlatoonID, 600)
	w.K.At(2*sim.Second, "arm", func() {
		if err := dos.Start(); err != nil {
			t.Error(err)
		}
	})
	joiner := w.AddVehicle(40, w.Vehs[len(w.Vehs)-1].State().Position-60, cfg.CruiseSpeed, message.RoleFree, cfg)
	if err := joiner.Start(); err != nil {
		t.Fatal(err)
	}
	w.K.At(10*sim.Second, "join", joiner.RequestJoin)
	if err := w.K.Run(25 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if dos.Sent < 100 {
		t.Fatalf("flood sent only %d requests", dos.Sent)
	}
	if joiner.Role() == message.RoleMember {
		t.Fatal("genuine joiner admitted during DoS flood")
	}
	if leader.Counters().JoinsDenied == 0 {
		t.Fatal("leader denied nothing under flood")
	}
}

func TestImpersonationEjectsVictim(t *testing.T) {
	w := testworld.New(10)
	cfg := platoon.DefaultConfig()
	_, members, err := w.BuildPlatoon(4, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	victim := members[0]
	radio := attack.NewRadio(w.K, w.Bus, 900, attackerPos(w), 23)
	im := attack.NewImpersonation(w.K, radio, cfg.PlatoonID, victim.ID())
	w.K.At(5*sim.Second, "arm", func() {
		if err := im.Start(); err != nil {
			t.Error(err)
		}
	})
	if err := w.K.Run(15 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if victim.Role() != message.RoleFree {
		t.Fatalf("victim role = %v, want ejected by forged leave", victim.Role())
	}
	if im.Sent == 0 {
		t.Fatal("nothing injected")
	}
}

func TestGPSSpoofCorruptsVictimBeacons(t *testing.T) {
	w := testworld.New(11)
	cfg := platoon.DefaultConfig()
	gps := vehicle.NewGPS(1.5, 0.2, w.K.Stream("victim-gps"))
	var victimVeh *vehicle.Vehicle
	memberOpts := func(i int) []platoon.Option {
		if i == 0 { // first member carries the spoofed receiver
			return []platoon.Option{platoon.WithPositionSource(func() (float64, bool) {
				fix := gps.Read(victimVeh.State())
				return fix.Position, fix.Valid
			})}
		}
		return nil
	}
	leader, members, err := w.BuildPlatoon(4, cfg, memberOpts)
	if err != nil {
		t.Fatal(err)
	}
	victimVeh = members[0].Vehicle()

	spoof := attack.NewGPSSpoof(w.K, gps, 3.0) // 3 m/s drift
	w.K.At(5*sim.Second, "arm", func() {
		if err := spoof.Start(); err != nil {
			t.Error(err)
		}
	})
	if err := w.K.Run(25 * sim.Second); err != nil {
		t.Fatal(err)
	}
	// The leader's record of the victim's position should now be far
	// from the truth.
	rec, ok := leader.Neighbors()[members[0].ID()]
	if !ok {
		t.Fatal("leader has no record of victim")
	}
	truth := victimVeh.State().Position
	if offset := math.Abs(rec.Beacon.Position - truth); offset < 30 {
		t.Fatalf("claimed-vs-true offset = %.1f m, want ≥ 30 (20 s at 3 m/s minus staleness)", offset)
	}
	if spoof.Offset() < 50 {
		t.Fatalf("spoof offset = %v", spoof.Offset())
	}
	spoof.Stop()
	if gps.Spoofed() {
		t.Fatal("spoof not removed on Stop")
	}
}

func TestSensorBlindRemovesGapMeasurement(t *testing.T) {
	w := testworld.New(12)
	rng := w.K.Stream("lidar")
	lidar := vehicle.NewLidar(rng)
	blind := attack.NewSensorBlind(lidar)
	if err := blind.Start(); err != nil {
		t.Fatal(err)
	}
	if r := lidar.Read(10, 0); r.Valid {
		t.Fatal("blinded lidar returned a reading")
	}
	blind.Stop()
	lidar.DropProb = 0
	if r := lidar.Read(10, 0); !r.Valid {
		t.Fatal("lidar still blind after Stop")
	}
}

func TestGPSJamLifecycle(t *testing.T) {
	w := testworld.New(13)
	gps := vehicle.NewGPS(1, 0.1, w.K.Stream("gps"))
	jam := attack.NewGPSJam(gps)
	if err := jam.Start(); err != nil {
		t.Fatal(err)
	}
	if fix := gps.Read(vehicle.State{Position: 10}); fix.Valid {
		t.Fatal("jammed GPS returned fix")
	}
	if err := jam.Start(); err == nil {
		t.Fatal("double start succeeded")
	}
	jam.Stop()
	if fix := gps.Read(vehicle.State{Position: 10}); !fix.Valid {
		t.Fatal("GPS still jammed after Stop")
	}
}

func TestMalwareInsiderSlowsPlatoon(t *testing.T) {
	w := testworld.New(14)
	cfg := platoon.DefaultConfig()
	mw := attack.NewMalware()
	memberOpts := func(i int) []platoon.Option {
		if i == 1 { // second member is compromised
			return []platoon.Option{platoon.WithBeaconMutator(mw.Lie)}
		}
		return nil
	}
	if _, _, err := w.BuildPlatoon(6, cfg, memberOpts); err != nil {
		t.Fatal(err)
	}
	w.K.At(10*sim.Second, "arm", func() {
		if err := mw.Start(); err != nil {
			t.Error(err)
		}
	})
	if err := w.K.Run(25 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if mw.BeaconsForged == 0 {
		t.Fatal("no beacons forged")
	}
	// Followers of the liar slow down / back off: the vehicle behind the
	// compromised member should show a clearly disturbed gap.
	gapBehindLiar := w.Vehs[3].Gap(w.Vehs[2])
	if math.Abs(gapBehindLiar-cfg.DesiredGap) < 1.5 {
		t.Fatalf("gap behind compromised member = %.2f m, indistinguishable from nominal", gapBehindLiar)
	}
}

func TestMalwareCANInjection(t *testing.T) {
	mw := attack.NewMalware()
	bus := vehicle.NewCANBus()
	mw.CANTarget = bus
	if err := mw.Start(); err != nil {
		t.Fatal(err)
	}
	mw.InjectCAN()
	if mw.CANInjected != 1 {
		t.Fatalf("open bus injections = %d, want 1", mw.CANInjected)
	}
	// With the on-board firewall (§VI-A5), the forged source is blocked.
	fw := vehicle.NewFirewall()
	fw.Permit("controller", vehicle.FrameControlCmd)
	bus.SetFirewall(fw)
	mw.InjectCAN()
	if mw.CANBlocked != 1 {
		t.Fatalf("firewalled injections blocked = %d, want 1", mw.CANBlocked)
	}
}

func TestVPDComposition(t *testing.T) {
	w := testworld.New(15)
	cfg := platoon.DefaultConfig()
	mw := attack.NewMalware()
	memberOpts := func(i int) []platoon.Option {
		if i == 0 {
			return []platoon.Option{platoon.WithBeaconMutator(mw.Lie)}
		}
		return nil
	}
	if _, _, err := w.BuildPlatoon(4, cfg, memberOpts); err != nil {
		t.Fatal(err)
	}
	jam := attack.NewJamming(w.K, w.Bus, 1900, 35, mac.JamPeriodic)
	jam.Jammer.Period = sim.Second
	jam.Jammer.OnFor = 300 * sim.Millisecond
	vpd := attack.NewVPD(mw, jam)
	if vpd.Name() != "vpd-combined" {
		t.Fatal("name")
	}
	if err := vpd.Start(); err != nil {
		t.Fatal(err)
	}
	if err := vpd.Start(); err == nil {
		t.Fatal("double start succeeded")
	}
	if !mw.Active() {
		t.Fatal("component not started")
	}
	vpd.Stop()
	if mw.Active() {
		t.Fatal("component not stopped")
	}
}

func TestVPDRollbackOnFailure(t *testing.T) {
	w := testworld.New(16)
	mwA := attack.NewMalware()
	mwB := attack.NewMalware()
	if err := mwB.Start(); err != nil { // pre-started: will fail inside VPD
		t.Fatal(err)
	}
	vpd := attack.NewVPD(mwA, mwB)
	if err := vpd.Start(); err == nil {
		t.Fatal("expected component failure")
	}
	if mwA.Active() {
		t.Fatal("first component not rolled back")
	}
	_ = w
}
