// Package attack implements the canonical attack suite for platoon
// communication — every row of the paper's Table II as runnable code:
//
//	Replay            §V-A1   internal integrity attack via old messages
//	Sybil             §V-A2   ghost vehicles joining the platoon
//	Fake maneuver     §V-A3   forged entrance / leave / split
//	Jamming           §V-B    RF noise flooding (see also internal/mac)
//	Eavesdropping     §V-C    passive information capture
//	DoS               §V-D    join-request flooding
//	Impersonation     §V-F    stolen-identity operation
//	GPS/sensor spoof  §V-G    corrupted positioning and blinded sensors
//	Malware           §V-H    compromised insider transmitting FDI
//
// plus the combined Vehicular Platoon Disruption (VPD) attack of Bermad
// et al. [10]. Attacks are armed against a running scenario and expose
// counters the metric layer reads.
package attack

import (
	"errors"
	"fmt"

	"platoonsec/internal/mac"
	"platoonsec/internal/message"
	"platoonsec/internal/obs"
	"platoonsec/internal/obs/span"
	"platoonsec/internal/sim"
)

// Attack is the common lifecycle every attack implements.
type Attack interface {
	// Name identifies the attack in reports (matches taxonomy keys).
	Name() string
	// Start arms the attack. It is an error to start twice.
	Start() error
	// Stop disarms the attack and releases its radio resources.
	Stop()
}

// Radio is an attacker's transceiver: a raw station on the bus that can
// inject arbitrary bytes and observe everything it can decode. All
// active attacks embed one.
type Radio struct {
	k     *sim.Kernel
	bus   *mac.Bus
	id    mac.NodeID
	pos   func() float64
	power float64

	recv     mac.Receiver
	attached bool

	// Injected counts frames this radio originated.
	Injected uint64

	rec       obs.Recorder
	cInjected *obs.Counter

	// Causal provenance: armSpan is the attack-origin root every
	// injection is parented under; nil spans disables tracing.
	spans   *span.Store
	armSpan span.ID
}

// NewRadio creates an attacker radio. pos reports the attacker's
// physical road position (roadside-parked attackers pass a constant).
func NewRadio(k *sim.Kernel, bus *mac.Bus, id mac.NodeID, pos func() float64, powerDBm float64) *Radio {
	return &Radio{k: k, bus: bus, id: id, pos: pos, power: powerDBm}
}

// SetRecorder attaches an observability recorder to the radio; nil
// detaches it. Attach/detach land as attack.arm / attack.disarm
// records, injections as attack.inject.
func (r *Radio) SetRecorder(rec obs.Recorder) {
	r.rec = rec
	if rec != nil {
		r.cInjected = rec.Metrics().Counter("attack.injected")
	} else {
		r.cInjected = nil
	}
}

// SetSpans attaches a causal span store; nil detaches it. The store
// receives an attack-origin arming span when the radio starts, and
// one injection span per frame, each parented under the arm.
func (r *Radio) SetSpans(s *span.Store) { r.spans = s }

// Spans returns the attached span store (nil when tracing is off) so
// attacks embedding the radio record into the same graph.
func (r *Radio) Spans() *span.Store { return r.spans }

// ArmSpan returns the radio's attack-origin root span, zero before
// Start or with tracing off.
func (r *Radio) ArmSpan() span.ID { return r.armSpan }

// record offers one attack-layer entry to the attached recorder.
func (r *Radio) record(level obs.Level, kind string) {
	//platoonvet:alloc-ok recorder is nil unless observability is on; Enabled gates the Record call
	if r.rec == nil || !r.rec.Enabled(obs.LayerAttack, level) {
		return
	}
	//platoonvet:alloc-ok recorder dispatch runs only when attack tracing is enabled
	r.rec.Record(obs.Record{
		AtNS:    int64(r.k.Now()),
		Layer:   obs.LayerAttack,
		Level:   level,
		Kind:    kind,
		Subject: uint32(r.id),
	})
}

// Start attaches the radio; recv may be nil for transmit-only attacks.
//
//platoonvet:hotpath sink -- recv runs once per frame the attacker overhears
func (r *Radio) Start(recv mac.Receiver) error {
	if r.attached {
		return errors.New("attack: radio already attached")
	}
	r.recv = recv
	if err := r.bus.Attach(r.id, r.pos, r.power, r.dispatch); err != nil {
		return fmt.Errorf("attack: %w", err)
	}
	r.attached = true
	r.record(obs.LevelInfo, "attack.arm")
	if r.spans != nil && r.armSpan == 0 {
		r.armSpan = r.spans.Add(span.Span{
			AtNS:    int64(r.k.Now()),
			Layer:   obs.LayerAttack,
			Kind:    "attack.arm",
			Subject: uint32(r.id),
			Attack:  true,
		})
	}
	return nil
}

func (r *Radio) dispatch(rx mac.Rx) {
	if r.recv != nil {
		//platoonvet:alloc-ok recv is the attacker's receive callback; one indirect call per overheard frame is the Radio API
		r.recv(rx)
	}
}

// Stop detaches the radio.
func (r *Radio) Stop() {
	if r.attached {
		r.bus.Detach(r.id)
		r.attached = false
		r.record(obs.LevelInfo, "attack.disarm")
	}
}

// SendRaw injects raw bytes onto the air.
//
//platoonvet:taint-source -- every frame leaving the attacker radio is adversary-controlled by definition
func (r *Radio) SendRaw(b []byte) {
	if !r.attached {
		return
	}
	r.Injected++
	r.cInjected.Inc()
	r.record(obs.LevelDebug, "attack.inject")
	var inject span.ID
	if r.spans != nil {
		detail := ""
		if _, kind, err := message.PeekEnvelope(b); err == nil {
			detail = kind.String()
		}
		inject = r.spans.Add(span.Span{
			Parent:  r.armSpan,
			AtNS:    int64(r.k.Now()),
			Layer:   obs.LayerAttack,
			Kind:    "attack.inject",
			Subject: uint32(r.id),
			Attack:  true,
			Detail:  detail,
		})
	}
	//platoonvet:allow errcheck -- the attacker radio keeps injecting even when its node is detached; failed injections are part of the threat model, not faults
	_ = r.bus.SendCaused(r.id, b, inject)
}

// SendEnvelope marshals and injects an (unsigned unless pre-signed)
// envelope.
//
//platoonvet:taint-source -- adversary-built envelopes enter the channel here
func (r *Radio) SendEnvelope(env *message.Envelope) { r.SendRaw(env.Marshal()) }

// Forge builds an unsigned envelope claiming an arbitrary sender — the
// basic FDI primitive against an open platoon.
//
//platoonvet:taint-source -- fabricates an unsigned envelope under any claimed sender identity
func Forge(senderID uint32, payload []byte) *message.Envelope {
	//platoonvet:alloc-ok forged envelopes are the attack payload; each junk frame is distinct by design
	return &message.Envelope{SenderID: senderID, Payload: payload}
}
