package attack

import "fmt"

// VPD is the combined Vehicular Platoon Disruption attack of Bermad et
// al. [10] (§VI-A3): "any FDI attack, GPS and sensor spoofing and
// jamming attacks or any combination of these attacks". It composes
// member attacks into one lifecycle so the VPD-ADA defense experiment
// (E8) faces the full combination.
type VPD struct {
	// Components are the composed attacks, started in order and stopped
	// in reverse.
	Components []Attack

	started int // how many components are currently running
}

var _ Attack = (*VPD)(nil)

// NewVPD composes the given attacks.
func NewVPD(components ...Attack) *VPD { return &VPD{Components: components} }

// Name implements Attack.
func (v *VPD) Name() string { return "vpd-combined" }

// Start implements Attack: it starts every component, rolling back on
// the first failure.
func (v *VPD) Start() error {
	if v.started > 0 {
		return errAlreadyStarted("vpd-combined")
	}
	for i, c := range v.Components {
		if err := c.Start(); err != nil {
			for j := i - 1; j >= 0; j-- {
				v.Components[j].Stop()
			}
			return fmt.Errorf("attack: vpd component %s: %w", c.Name(), err)
		}
		v.started++
	}
	return nil
}

// Stop implements Attack.
func (v *VPD) Stop() {
	for i := v.started - 1; i >= 0; i-- {
		v.Components[i].Stop()
	}
	v.started = 0
}
