package attack

import (
	"platoonsec/internal/mac"
	"platoonsec/internal/message"
	"platoonsec/internal/sim"
)

// Sybil creates ghost vehicles from a single physical transmitter
// (§V-A2): each ghost runs the join protocol against the platoon leader
// and, once admitted, beacons a fabricated position slotted in behind
// the platoon tail. The leader's roster fills with vehicles that do not
// exist — "the platoon leader [thinks] there are more vehicles part of
// the platoon than there really are" — which blocks genuine joiners and
// leaves phantom gaps.
type Sybil struct {
	// GhostIDs are the fabricated vehicle identities.
	GhostIDs []uint32
	// PlatoonID is the target platoon.
	PlatoonID uint32
	// JoinPeriod is the interval between ghost join attempts.
	JoinPeriod sim.Time
	// BeaconPeriod is the ghosts' CAM interval once admitted.
	BeaconPeriod sim.Time
	// GhostSpacing is the claimed bumper-to-bumper gap between ghosts.
	GhostSpacing float64

	radio *Radio
	k     *sim.Kernel

	// seen tracks the latest beacon per genuine platoon vehicle; the
	// tail is recomputed from fresh entries so the ghosts keep pace
	// with the moving platoon.
	seen map[uint32]tailObs

	phase   map[uint32]int // 0 idle, 1 requested, 2 admitted
	seq     uint32
	tickers []*sim.Ticker
	started bool

	// Admitted counts ghosts the leader accepted into the roster.
	Admitted int
}

var _ Attack = (*Sybil)(nil)

// NewSybil builds a Sybil attacker with n ghosts whose IDs start at
// firstGhostID.
func NewSybil(k *sim.Kernel, radio *Radio, platoonID uint32, firstGhostID uint32, n int) *Sybil {
	s := &Sybil{
		PlatoonID:    platoonID,
		JoinPeriod:   2 * sim.Second,
		BeaconPeriod: 100 * sim.Millisecond,
		GhostSpacing: 20,
		radio:        radio,
		k:            k,
		phase:        make(map[uint32]int),
		seen:         make(map[uint32]tailObs),
	}
	for i := 0; i < n; i++ {
		s.GhostIDs = append(s.GhostIDs, firstGhostID+uint32(i))
	}
	return s
}

// Name implements Attack.
func (s *Sybil) Name() string { return "sybil" }

// Start implements Attack.
func (s *Sybil) Start() error {
	if s.started {
		return errAlreadyStarted("sybil")
	}
	if err := s.radio.Start(s.onRx); err != nil {
		return err
	}
	s.started = true
	s.tickers = append(s.tickers,
		s.k.Every(s.k.Now()+s.JoinPeriod, s.JoinPeriod, "attack.sybil.join", s.pumpJoins),
		s.k.Every(s.k.Now()+s.BeaconPeriod, s.BeaconPeriod, "attack.sybil.beacon", s.beaconGhosts),
	)
	return nil
}

// Stop implements Attack.
func (s *Sybil) Stop() {
	for _, t := range s.tickers {
		t.Stop()
	}
	s.tickers = nil
	s.radio.Stop()
	s.started = false
}

func (s *Sybil) nextSeq() uint32 {
	s.seq++
	return s.seq
}

// onRx tracks the platoon tail and reacts to join responses.
//
//platoonvet:taint-source -- ghost replies crafted from overheard platoon state (Table II sybil)
func (s *Sybil) onRx(rx mac.Rx) {
	env, err := message.UnmarshalEnvelope(rx.Payload)
	if err != nil {
		return
	}
	kind, err := env.Kind()
	if err != nil {
		return
	}
	switch kind {
	case message.KindBeacon:
		b, err := message.UnmarshalBeacon(env.Payload)
		if err != nil || b.PlatoonID != s.PlatoonID {
			return
		}
		if s.isGhost(b.VehicleID) {
			return
		}
		s.seen[b.VehicleID] = tailObs{pos: b.Position, speed: b.Speed, at: s.k.Now()}
	case message.KindManeuver:
		m, err := message.UnmarshalManeuver(env.Payload)
		if err != nil || m.PlatoonID != s.PlatoonID {
			return
		}
		if m.Type == message.ManeuverJoinAccept && s.isGhost(m.TargetID) {
			if s.phase[m.TargetID] == 1 {
				s.phase[m.TargetID] = 2
				s.Admitted++
				// Complete immediately: no physical approach needed for
				// a vehicle that does not exist.
				//platoonvet:alloc-ok one forged completion per ghost join; maneuvers are per-protocol-step, not per frame
				mc := &message.Maneuver{
					Type:       message.ManeuverJoinComplete,
					VehicleID:  m.TargetID,
					PlatoonID:  s.PlatoonID,
					TargetID:   m.VehicleID,
					Seq:        s.nextSeq(),
					TimestampN: int64(s.k.Now()),
				}
				s.radio.SendEnvelope(Forge(m.TargetID, mc.Marshal()))
			}
		}
	}
}

// pumpJoins sends a join request for the next idle ghost; once every
// ghost has requested, it re-requests ghosts whose accept never came
// back (broadcast frames are lossy and the attacker, like any joiner,
// retries).
//
//platoonvet:taint-source -- ghost join requests fabricating non-existent vehicles (Table II sybil)
func (s *Sybil) pumpJoins() {
	for _, phase := range []int{0, 1} {
		for _, id := range s.GhostIDs {
			if s.phase[id] != phase {
				continue
			}
			s.phase[id] = 1
			//platoonvet:alloc-ok one forged request per ghost join attempt; Hz-scale attack rate
			m := &message.Maneuver{
				Type:       message.ManeuverJoinRequest,
				VehicleID:  id,
				PlatoonID:  s.PlatoonID,
				Seq:        s.nextSeq(),
				TimestampN: int64(s.k.Now()),
			}
			s.radio.SendEnvelope(Forge(id, m.Marshal()))
			return
		}
	}
}

// tailObs is one observed genuine-vehicle state.
type tailObs struct {
	pos, speed float64
	at         sim.Time
}

// tail returns the rearmost *fresh* genuine platoon position.
func (s *Sybil) tail() (tailObs, bool) {
	now := s.k.Now()
	var best tailObs
	found := false
	for _, obs := range s.seen {
		if now-obs.at > sim.Second {
			continue
		}
		if !found || obs.pos < best.pos {
			best = obs
			found = true
		}
	}
	return best, found
}

// beaconGhosts transmits CAMs for every ghost, fabricating positions
// strung out behind the genuine tail. Ghosts beacon from the start —
// before requesting to join — both because that is what a competent
// Sybil attacker does (a vehicle that appears out of nowhere and
// immediately asks to join is trivially suspicious) and because it
// defeats join gates that merely require observed presence.
//
//platoonvet:taint-source -- fabricated ghost beacons sustaining the fake vehicles (Table II sybil)
func (s *Sybil) beaconGhosts() {
	tail, ok := s.tail()
	if !ok {
		return
	}
	for slot, id := range s.GhostIDs {
		slot++ // 1-based spacing behind the tail
		//platoonvet:alloc-ok one forged beacon per ghost per beacon period; Hz-scale attack rate
		b := &message.Beacon{
			VehicleID:  id,
			PlatoonID:  s.PlatoonID,
			Seq:        s.nextSeq(),
			TimestampN: int64(s.k.Now()),
			Role:       message.RoleMember,
			Position:   tail.pos - float64(slot)*s.GhostSpacing,
			Speed:      tail.speed,
			Accel:      0,
		}
		s.radio.SendEnvelope(Forge(id, b.Marshal()))
	}
}

func (s *Sybil) isGhost(id uint32) bool {
	for _, g := range s.GhostIDs {
		if g == id {
			return true
		}
	}
	return false
}
