package attack_test

import (
	"testing"

	"platoonsec/internal/attack"
	"platoonsec/internal/mac"
	"platoonsec/internal/platoon"
	"platoonsec/internal/sim"
	"platoonsec/internal/testworld"
	"platoonsec/internal/vehicle"
)

// TestAttackLifecycles drives every attack through the common contract:
// non-empty name, successful arm, error on double-arm, idempotent stop,
// and re-armability where the radio allows it.
func TestAttackLifecycles(t *testing.T) {
	w := testworld.New(40)
	cfg := platoon.DefaultConfig()
	if _, _, err := w.BuildPlatoon(3, cfg, nil); err != nil {
		t.Fatal(err)
	}
	gps := vehicle.NewGPS(1, 0.1, w.K.Stream("gps"))
	lidar := vehicle.NewLidar(w.K.Stream("lidar"))

	nextNode := mac.NodeID(900)
	mkRadio := func() *attack.Radio {
		nextNode++
		return attack.NewRadio(w.K, w.Bus, nextNode, func() float64 { return 1900 }, 23)
	}

	attacks := []attack.Attack{
		attack.NewReplay(w.K, mkRadio()),
		attack.NewSybil(w.K, mkRadio(), cfg.PlatoonID, 500, 2),
		attack.NewFakeManeuver(w.K, mkRadio(), attack.FakeEntrance, cfg.PlatoonID),
		attack.NewFakeManeuver(w.K, mkRadio(), attack.FakeLeave, cfg.PlatoonID),
		attack.NewFakeManeuver(w.K, mkRadio(), attack.FakeSplit, cfg.PlatoonID),
		attack.NewFakeManeuver(w.K, mkRadio(), attack.FakeDissolve, cfg.PlatoonID),
		attack.NewJamming(w.K, w.Bus, 1900, 35, mac.JamConstant),
		attack.NewJamming(w.K, w.Bus, 1900, 35, mac.JamPeriodic),
		attack.NewJamming(w.K, w.Bus, 1900, 35, mac.JamReactive),
		attack.NewEavesdrop(mkRadio()),
		attack.NewDoSFlood(w.K, mkRadio(), cfg.PlatoonID, 600),
		attack.NewImpersonation(w.K, mkRadio(), cfg.PlatoonID, 2),
		attack.NewGPSSpoof(w.K, gps, 3),
		attack.NewGPSJam(gps),
		attack.NewSensorBlind(lidar),
		attack.NewMalware(),
		attack.NewVPD(attack.NewMalware(), attack.NewSensorBlind(vehicle.NewLidar(w.K.Stream("l2")))),
	}
	seen := map[string]bool{}
	for _, a := range attacks {
		name := a.Name()
		if name == "" {
			t.Fatalf("%T has empty name", a)
		}
		if err := a.Start(); err != nil {
			t.Fatalf("%s: Start: %v", name, err)
		}
		if err := a.Start(); err == nil {
			t.Fatalf("%s: double Start succeeded", name)
		}
		a.Stop()
		a.Stop() // idempotent
		seen[name] = true
	}
	// Spot-check distinct names across variants.
	for _, want := range []string{
		"replay", "sybil", "fake-entrance", "fake-leave", "fake-split",
		"fake-dissolve", "jamming-constant", "jamming-periodic",
		"jamming-reactive", "eavesdropping", "dos", "impersonation",
		"gps-spoofing", "gps-jamming", "sensor-jamming", "malware",
		"vpd-combined",
	} {
		if !seen[want] {
			t.Errorf("attack %q missing from suite", want)
		}
	}
	// Let the armed-then-stopped world settle: nothing should blow up.
	if err := w.K.Run(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
}

func TestFakeManeuverUnknownKindString(t *testing.T) {
	if attack.FakeManeuverKind(99).String() != "fake-unknown" {
		t.Fatal("unknown kind string")
	}
}

func TestReplayKindFilter(t *testing.T) {
	w := testworld.New(41)
	cfg := platoon.DefaultConfig()
	if _, _, err := w.BuildPlatoon(3, cfg, nil); err != nil {
		t.Fatal(err)
	}
	radio := attack.NewRadio(w.K, w.Bus, 900, func() float64 { return 1950 }, 23)
	rp := attack.NewReplay(w.K, radio)
	rp.KindFilter = 2 // maneuvers only — steady-state platoon sends none
	rp.RecordFor = 5 * sim.Second
	if err := rp.Start(); err != nil {
		t.Fatal(err)
	}
	if err := w.K.Run(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if rp.Recorded != 0 {
		t.Fatalf("kind filter leaked %d non-maneuver frames into the buffer", rp.Recorded)
	}
}

func TestFakeManeuverOneShot(t *testing.T) {
	w := testworld.New(42)
	cfg := platoon.DefaultConfig()
	if _, _, err := w.BuildPlatoon(3, cfg, nil); err != nil {
		t.Fatal(err)
	}
	radio := attack.NewRadio(w.K, w.Bus, 900, func() float64 { return 1950 }, 23)
	fm := attack.NewFakeManeuver(w.K, radio, attack.FakeSplit, cfg.PlatoonID)
	fm.SpoofSender = 1
	fm.Slot = 1
	fm.MaxShots = 1
	if err := fm.Start(); err != nil {
		t.Fatal(err)
	}
	if err := w.K.Run(20 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if fm.Sent != 1 {
		t.Fatalf("one-shot attack sent %d forgeries", fm.Sent)
	}
}
