package attack

import (
	"platoonsec/internal/mac"
	"platoonsec/internal/obs"
	"platoonsec/internal/obs/span"
	"platoonsec/internal/sim"
)

// Jamming floods the platoon's radio frequencies with noise (§V-B). It
// is a thin lifecycle wrapper over mac.Jammer: the physics — raised
// interference floors, carrier-sense starvation, SINR collapse — lives
// in the MAC/PHY layers, so the attack's effect emerges rather than
// being scripted.
type Jamming struct {
	// Jammer is the interference source description.
	Jammer mac.Jammer

	bus     *mac.Bus
	k       *sim.Kernel
	armed   *mac.Jammer
	started bool
	rec     obs.Recorder
	spans   *span.Store
	armSpan span.ID
}

var _ Attack = (*Jamming)(nil)

// NewJamming builds a jamming attack. position is the jammer's road
// coordinate; powerDBm its radiated power (a 30–40 dBm roadside jammer
// overwhelms 20 dBm vehicle radios for hundreds of metres).
func NewJamming(k *sim.Kernel, bus *mac.Bus, position, powerDBm float64, pattern mac.JamPattern) *Jamming {
	return &Jamming{
		Jammer: mac.Jammer{
			Position: position,
			PowerDBm: powerDBm,
			Pattern:  pattern,
		},
		bus: bus,
		k:   k,
	}
}

// Name implements Attack.
func (j *Jamming) Name() string { return "jamming-" + j.Jammer.Pattern.String() }

// SetRecorder attaches an observability recorder; nil detaches it.
func (j *Jamming) SetRecorder(rec obs.Recorder) { j.rec = rec }

// SetSpans attaches a causal span store; nil detaches it. The armed
// jammer carries the arming span so MAC starvation drops and
// jam-induced losses attribute to this attack.
func (j *Jamming) SetSpans(s *span.Store) { j.spans = s }

// ArmSpan returns the jammer's attack-origin root span, zero before
// Start or with tracing off.
func (j *Jamming) ArmSpan() span.ID { return j.armSpan }

func (j *Jamming) record(kind string) {
	if j.rec == nil || !j.rec.Enabled(obs.LayerAttack, obs.LevelInfo) {
		return
	}
	j.rec.Record(obs.Record{
		AtNS:   int64(j.k.Now()),
		Layer:  obs.LayerAttack,
		Level:  obs.LevelInfo,
		Kind:   kind,
		Detail: j.Name(),
		Value:  j.Jammer.PowerDBm,
	})
}

// Start implements Attack.
//
//platoonvet:taint-source -- RF-level denial shaping which frames survive (Table II jamming)
func (j *Jamming) Start() error {
	if j.started {
		return errAlreadyStarted("jamming")
	}
	jam := j.Jammer
	if jam.Start == 0 {
		jam.Start = j.k.Now()
	}
	if j.spans != nil {
		j.armSpan = j.spans.Add(span.Span{
			AtNS:   int64(j.k.Now()),
			Layer:  obs.LayerAttack,
			Kind:   "attack.arm",
			Attack: true,
			Detail: j.Name(),
			Value:  jam.PowerDBm,
		})
		jam.Span = j.armSpan
	}
	j.armed = &jam
	j.bus.AddJammer(j.armed)
	j.started = true
	j.record("attack.arm")
	return nil
}

// Stop implements Attack.
func (j *Jamming) Stop() {
	if j.armed != nil {
		j.bus.RemoveJammer(j.armed)
		j.armed = nil
		j.record("attack.disarm")
	}
	j.started = false
}
