package attack

import (
	"platoonsec/internal/detmap"
	"platoonsec/internal/mac"
	"platoonsec/internal/message"
	"platoonsec/internal/obs"
	"platoonsec/internal/obs/span"
	"platoonsec/internal/sim"
)

// Track is an eavesdropper's reconstructed trajectory for one vehicle:
// the §V-C / §V-E information-theft product ("GPS locations and tracking
// information … rest or overnight stops, which criminals can use").
type Track struct {
	VehicleID uint32
	Fixes     int
	FirstPos  float64
	LastPos   float64
	FirstAt   sim.Time
	LastAt    sim.Time
}

// Eavesdrop passively captures platoon traffic and measures what an
// attacker learns (§V-C). Against an open platoon it reconstructs every
// vehicle's trajectory; against link encryption it sees only ciphertext,
// and the information yield collapses — the contrast E2/E3 quantify.
type Eavesdrop struct {
	radio   *Radio
	started bool

	// FramesHeard counts all captured frames.
	FramesHeard uint64
	// Decodable counts frames that parsed as valid envelopes.
	Decodable uint64
	// Beacons counts decoded position beacons.
	Beacons uint64
	// Maneuvers counts decoded maneuver messages (operational intel).
	Maneuvers uint64

	tracks map[uint32]*Track

	// Per-frame decode scratch: the listener parses every frame on the
	// air, and per-frame unmarshal allocations dominate its cost. The
	// radio delivers on the single DES goroutine; nothing below retains
	// the decoded structs.
	rxEnv      message.Envelope
	rxBeacon   message.Beacon
	rxManeuver message.Maneuver
	rxMemb     message.Membership
	rxKeyReq   message.KeyRequest
	rxKeyResp  message.KeyResponse
}

var _ Attack = (*Eavesdrop)(nil)

// NewEavesdrop builds a passive listener.
func NewEavesdrop(radio *Radio) *Eavesdrop {
	return &Eavesdrop{radio: radio, tracks: make(map[uint32]*Track)}
}

// Name implements Attack.
func (e *Eavesdrop) Name() string { return "eavesdropping" }

// Start implements Attack.
func (e *Eavesdrop) Start() error {
	if e.started {
		return errAlreadyStarted("eavesdropping")
	}
	if err := e.radio.Start(e.onRx); err != nil {
		return err
	}
	e.started = true
	return nil
}

// Stop implements Attack.
func (e *Eavesdrop) Stop() {
	e.radio.Stop()
	e.started = false
}

func (e *Eavesdrop) onRx(rx mac.Rx) {
	e.FramesHeard++
	env := &e.rxEnv
	if err := message.DecodeEnvelope(rx.Payload, env); err != nil {
		return
	}
	kind, err := env.Kind()
	if err != nil {
		return
	}
	// "Decodable" means the attacker extracted real content, not merely
	// that random ciphertext happened to satisfy the envelope framing —
	// so require a full message decode.
	switch kind {
	case message.KindBeacon:
		b := &e.rxBeacon
		if err := message.DecodeBeacon(env.Payload, b); err != nil {
			return
		}
		e.Decodable++
		e.Beacons++
		tr := e.tracks[b.VehicleID]
		if tr == nil {
			tr = &Track{VehicleID: b.VehicleID, FirstPos: b.Position, FirstAt: rx.At}
			e.tracks[b.VehicleID] = tr
			// First fix on a new victim: the §V-C information-theft
			// effect, parented under the delivery that leaked it and
			// caused by this attack's arming.
			if s := e.radio.Spans(); s != nil {
				s.Add(span.Span{
					Parent:  rx.Span,
					Cause:   e.radio.ArmSpan(),
					AtNS:    int64(rx.At),
					Layer:   obs.LayerAttack,
					Kind:    "attack.track",
					Subject: b.VehicleID,
					Attack:  true,
				})
			}
		}
		tr.Fixes++
		tr.LastPos = b.Position
		tr.LastAt = rx.At
	case message.KindManeuver:
		if err := message.DecodeManeuver(env.Payload, &e.rxManeuver); err != nil {
			return
		}
		e.Decodable++
		e.Maneuvers++
	case message.KindMembership:
		if err := message.DecodeMembership(env.Payload, &e.rxMemb); err != nil {
			return
		}
		e.Decodable++
	case message.KindKeyRequest:
		if err := message.DecodeKeyRequest(env.Payload, &e.rxKeyReq); err != nil {
			return
		}
		e.Decodable++
	case message.KindKeyResponse:
		if err := message.DecodeKeyResponse(env.Payload, &e.rxKeyResp); err != nil {
			return
		}
		e.Decodable++
	}
}

// Tracks returns reconstructed trajectories sorted by vehicle ID.
func (e *Eavesdrop) Tracks() []Track {
	out := make([]Track, 0, len(e.tracks))
	for _, vid := range detmap.SortedKeys(e.tracks) {
		out = append(out, *e.tracks[vid])
	}
	return out
}

// InfoYield is the fraction of heard frames the attacker could decode —
// 1.0 against an open platoon, ~0 against link encryption.
func (e *Eavesdrop) InfoYield() float64 {
	if e.FramesHeard == 0 {
		return 0
	}
	return float64(e.Decodable) / float64(e.FramesHeard)
}
