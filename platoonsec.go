// Package platoonsec is a pure-Go platoon-communication security
// laboratory: a deterministic simulation of vehicular platooning (CACC
// control, 802.11p-like broadcast radio, join/leave/split maneuvers), a
// canonical attack suite covering every threat class in Taylor et al.,
// "Vehicular Platoon Communication: Cybersecurity Threats and Open
// Challenges" (DSN-W 2021), and the defense mechanisms the paper
// surveys (PKI, RSU key distribution, VPD-ADA plausibility detection,
// trust management, SP-VLC hybrid communication, on-board hardening).
//
// The quickest way in is a scenario run:
//
//	res, err := platoonsec.Run(platoonsec.Options{
//	    Seed:        1,
//	    Duration:    60 * platoonsec.Second,
//	    Vehicles:    8,
//	    Cfg:         platoonsec.DefaultPlatoonConfig(),
//	    AttackKey:   "jamming",
//	    AttackStart: 10 * platoonsec.Second,
//	    Defense:     platoonsec.DefensePack{Hybrid: true},
//	})
//
// Result fields map onto the four security properties the paper's
// Table II uses (authenticity, integrity, availability,
// confidentiality). See DESIGN.md for the experiment index and
// EXPERIMENTS.md for the measured reproduction of each table.
package platoonsec

import (
	"context"
	"io"

	"platoonsec/internal/engine"
	"platoonsec/internal/obs"
	"platoonsec/internal/obs/span"
	"platoonsec/internal/platoon"
	"platoonsec/internal/risk"
	"platoonsec/internal/scenario"
	"platoonsec/internal/service"
	"platoonsec/internal/sim"
	"platoonsec/internal/taxonomy"
	"platoonsec/internal/world"
)

// Time is a simulation timestamp / duration in nanoseconds.
type Time = sim.Time

// Time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Options configures one experiment run.
type Options = scenario.Options

// Result is the reduced outcome of one run.
type Result = scenario.Result

// DefensePack selects active defense mechanisms.
type DefensePack = scenario.DefensePack

// PlatoonConfig holds platoon protocol parameters.
type PlatoonConfig = platoon.Config

// Run executes one experiment. It is deterministic in Options.
func Run(o Options) (*Result, error) { return scenario.Run(o) }

// DefaultOptions returns the standard experiment shell (8 vehicles,
// 60 s, attack armed at t=10 s).
func DefaultOptions() Options { return scenario.DefaultOptions() }

// DefaultPlatoonConfig returns ETSI-flavoured protocol parameters.
func DefaultPlatoonConfig() PlatoonConfig { return platoon.DefaultConfig() }

// PackForMechanism maps a Table III mechanism key ("keys", "rsu",
// "control-algorithms", "hybrid-comms", "onboard") to its defense
// configuration.
func PackForMechanism(key string) (DefensePack, error) {
	return scenario.PackForMechanism(key)
}

// AllDefenses returns the fully hardened configuration.
func AllDefenses() DefensePack { return scenario.AllDefenses() }

// SweepConfig configures SweepWithReport (worker count, error policy,
// streaming JSONL sink).
type SweepConfig = scenario.SweepConfig

// SweepReport is a full sweep outcome: positionally aligned results,
// per-run telemetry, and aggregate throughput/latency statistics.
type SweepReport = engine.Report[*Result]

// SweepTelemetry aggregates one sweep (wall time, runs/sec, ns/run,
// events/sec, allocation counters, p50/p95/max run latency).
type SweepTelemetry = engine.Telemetry

// Sweep runs independent experiments in parallel across runs (each run
// stays single-goroutine and deterministic). Results are positionally
// aligned; on failure the error names the lowest-indexed failing run.
func Sweep(optsList []Options, parallelism int) ([]*Result, error) {
	return scenario.Sweep(optsList, parallelism)
}

// SweepWithReport runs experiments through the experiment engine and
// returns the full report including telemetry. Output is byte-identical
// to serial execution regardless of worker count.
func SweepWithReport(ctx context.Context, optsList []Options, cfg SweepConfig) *SweepReport {
	return scenario.SweepReport(ctx, optsList, cfg)
}

// ObsLevel is a flight-recorder severity (ObsTrace … ObsError).
type ObsLevel = obs.Level

// Flight-recorder severity levels, most verbose first.
const (
	ObsTrace = obs.LevelTrace
	ObsDebug = obs.LevelDebug
	ObsInfo  = obs.LevelInfo
	ObsWarn  = obs.LevelWarn
	ObsError = obs.LevelError
)

// ObsSnapshot is the observability snapshot landing in Result.Obs when
// Options.Observe is set: flight-recorder admission statistics plus
// every non-zero named counter, gauge and histogram.
type ObsSnapshot = obs.Snapshot

// ParseObsLevel maps a severity name ("trace", "debug", "info",
// "warn", "error") to its level; unknown names report ok false.
func ParseObsLevel(s string) (ObsLevel, bool) { return obs.ParseLevel(s) }

// ObsLevelNames lists the severity names ParseObsLevel accepts, most
// verbose first — for CLI usage strings and error messages.
func ObsLevelNames() []string { return obs.LevelNames() }

// SpanStats is the span store's admission accounting landing in
// Result.Spans when Options.Spans is set.
type SpanStats = span.Stats

// Forensics is the causal attribution report landing in
// Result.Forensics when Options.Spans is set: per effect kind, the
// occurrence count, how many occurrences trace back to an attack-origin
// span, and the top-k rendered causal chains.
type Forensics = span.Forensics

// WriteChromeTrace renders flight-recorder records as a Chrome
// trace-event / Perfetto JSON document; prefer Options.ChromeTrace,
// which wires this up per run.
func WriteChromeTrace(w io.Writer, recs []obs.Record) error {
	return obs.WriteChromeTrace(w, recs)
}

// StartProfiles begins pprof capture: a CPU profile to cpuPath and, at
// stop time, a heap profile to memPath (either may be empty). Call the
// returned stop function when the measured work is done.
func StartProfiles(cpuPath, memPath string) (func() error, error) {
	return engine.StartProfiles(cpuPath, memPath)
}

// AttackClass describes one Table II attack.
type AttackClass = taxonomy.AttackClass

// Mechanism describes one Table III defense family.
type Mechanism = taxonomy.Mechanism

// Survey describes one Table I related survey.
type Survey = taxonomy.Survey

// Attacks returns the Table II attack registry.
func Attacks() []AttackClass { return taxonomy.Attacks() }

// Mechanisms returns the Table III mechanism registry.
func Mechanisms() []Mechanism { return taxonomy.Mechanisms() }

// Surveys returns the Table I survey registry.
func Surveys() []Survey { return taxonomy.Surveys() }

// RiskEvidence carries measured outcomes into the risk matrix.
type RiskEvidence = risk.Evidence

// RiskAssessment is one risk-matrix row.
type RiskAssessment = risk.Assessment

// RiskMatrix assesses every attack, using measured evidence where
// provided (keyed by attack key; nil values allowed).
func RiskMatrix(evidence map[string]*RiskEvidence) []RiskAssessment {
	return risk.Matrix(evidence)
}

// RenderRiskMatrix prints a risk matrix as text.
func RenderRiskMatrix(m []RiskAssessment) string { return risk.Render(m) }

// WorldOptions configures a sharded multi-platoon highway world run: a
// ring of platoons with a full lifecycle layer (join/leave/split/merge,
// junction crossings, Sybil ghost admission) spatially partitioned into
// deterministic kernel shards. Results are byte-identical at any shard
// and worker count.
type WorldOptions = world.Options

// WorldResult is the reduced outcome of one world run.
type WorldResult = world.Result

// DefaultWorldOptions returns the standard world shell (40 platoons of
// 8 vehicles on an auto-sized ring, 60 s, 1 shard).
func DefaultWorldOptions() WorldOptions { return world.DefaultOptions() }

// RunWorld executes the sharded world described by opts.World,
// inheriting the shared experiment knobs (Seed, Duration, AttackKey,
// AttackStart, Spans, SpanCapacity, EventsJSONL) from opts wherever the
// world options leave them zero.
func RunWorld(opts Options) (*WorldResult, error) { return scenario.RunWorld(opts) }

// ServiceConfig configures an embedded simulation service (the engine
// behind cmd/platoond): digest-keyed result cache bounds, optional
// disk spill, admission control and per-tenant quotas. Config.Now is
// required — pass time.Now, or a fake in tests.
type ServiceConfig = service.Config

// ServiceServer is the HTTP simulation service: POST /v1/runs bodies
// are normalized, digested and served through a content-addressed
// cache with single-flight deduplication, so identical requests cost
// one simulation. Mount Handler() on any http.Server.
type ServiceServer = service.Server

// NewServiceServer builds the simulation service from cfg.
func NewServiceServer(cfg ServiceConfig) (*ServiceServer, error) {
	return service.NewServer(cfg)
}

// ServiceRequest is one run submission — the JSON body of
// POST /v1/runs (seed, duration, attack, knobs, defenses, optional
// world block). The zero value of every field selects its documented
// default.
type ServiceRequest = service.RunRequest

// ServiceDigest normalizes r in place and returns its canonical
// digest — the content-address platoond caches the run under. Two
// requests describe the same experiment iff their digests are equal.
func ServiceDigest(r *ServiceRequest) (string, error) {
	if err := r.Normalize(); err != nil {
		return "", err
	}
	return service.Digest(r)
}
