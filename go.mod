module platoonsec

go 1.22
