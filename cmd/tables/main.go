// Command tables regenerates the paper's tables, augmented with
// measured simulation outcomes:
//
//	tables -table 1        Table I  (related surveys, from the registry)
//	tables -table 2        Table II (attacks; measured impact per row)
//	tables -table 3        Table III (defenses; measured mitigation)
//	tables -risk           §VI-B4 risk matrix from measured evidence
//	tables -all            everything
//	tables -quick          shorter runs (40 s, 6 vehicles)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"platoonsec/internal/lab"
	"platoonsec/internal/risk"
	"platoonsec/internal/sim"
	"platoonsec/internal/taxonomy"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tables", flag.ContinueOnError)
	table := fs.Int("table", 0, "table number to print (1, 2 or 3)")
	riskFlag := fs.Bool("risk", false, "print the measured risk matrix")
	all := fs.Bool("all", false, "print every table and the risk matrix")
	quick := fs.Bool("quick", false, "shorter runs")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := lab.DefaultConfig()
	cfg.Seed = *seed
	if *quick {
		cfg.Duration = 40 * sim.Second
		cfg.Vehicles = 6
	}
	if *all {
		*table = 0
		*riskFlag = true
	}

	printI := *all || *table == 1
	printII := *all || *table == 2
	printIII := *all || *table == 3
	if !printI && !printII && !printIII && !*riskFlag {
		printI, printII, printIII, *riskFlag = true, true, true, true
	}

	if printI {
		if err := emit(out, taxonomy.RenderTableI()); err != nil {
			return err
		}
	}

	var outcomes map[string]*lab.AttackOutcome
	if printII || *riskFlag {
		fmt.Fprintln(os.Stderr, "tables: running Table II attack sweep...")
		var err error
		outcomes, err = lab.MeasureTableII(cfg)
		if err != nil {
			return err
		}
	}
	if printII {
		measured := make(map[string]string, len(outcomes))
		for k, o := range outcomes {
			status := "REPRODUCED"
			if !o.PropertyHeld {
				status = "NOT REPRODUCED"
			}
			measured[k] = fmt.Sprintf("[%s] %s", status, o.Summary)
		}
		if err := emit(out, taxonomy.RenderTableII(measured)); err != nil {
			return err
		}
	}

	if printIII {
		fmt.Fprintln(os.Stderr, "tables: running Table III defense matrix...")
		cells, err := lab.MeasureTableIII(cfg)
		if err != nil {
			return err
		}
		measured := make(map[string]string)
		keys := make([]string, 0, len(cells))
		for k := range cells {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			cell := cells[k]
			verdict := "MITIGATED"
			if !cell.Mitigated {
				verdict = "NOT MITIGATED"
			}
			measured[cell.MechanismKey] += fmt.Sprintf("%s: %s (%s); ", cell.AttackKey, verdict, cell.Note)
		}
		for k, v := range measured {
			measured[k] = strings.TrimSuffix(v, "; ")
		}
		if err := emit(out, taxonomy.RenderTableIII(measured)); err != nil {
			return err
		}
	}

	if *riskFlag {
		matrix := risk.Matrix(lab.RiskEvidence(outcomes))
		if err := emit(out, risk.Render(matrix)); err != nil {
			return err
		}
	}
	return nil
}

// emit writes one rendered table. A failed write must fail the command:
// a truncated transcript must not pass for a regenerated one.
func emit(out io.Writer, table string) error {
	_, err := fmt.Fprintln(out, table)
	return err
}
