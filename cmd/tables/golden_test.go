package main

// Golden-file gate for the paper tables: `tables -all` output must
// match docs_tables_output.txt byte-for-byte, so Table I–III or
// risk-matrix regressions fail CI instead of silently drifting. After
// an intentional change, regenerate with:
//
//	go test ./cmd/tables -run TestGoldenTablesOutput -update

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite docs_tables_output.txt from current output")

func TestGoldenTablesOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("full -all sweep runs every experiment (~30s)")
	}
	if raceEnabled {
		t.Skip("full -all sweep takes minutes under the race detector; covered by the non-race test job")
	}
	var buf bytes.Buffer
	if err := run([]string{"-all"}, &buf); err != nil {
		t.Fatalf("tables -all: %v", err)
	}
	golden := filepath.Join("..", "..", "docs_tables_output.txt")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d bytes)", golden, buf.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(buf.Bytes(), want) {
		return
	}
	gotLines := strings.Split(buf.String(), "\n")
	wantLines := strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Errorf("tables -all drifted from %s at line %d:\n got: %q\nwant: %q\n(run `go test ./cmd/tables -run TestGoldenTablesOutput -update` after an intentional change)",
				golden, i+1, g, w)
			return
		}
	}
	t.Errorf("tables -all output differs from %s (same lines, different bytes?)", golden)
}
