package main

import (
	"io"
	"testing"
)

func TestRunTableOne(t *testing.T) {
	// Table I is registry-only: fast and deterministic.
	if err := run([]string{"-table", "1"}, io.Discard); err != nil {
		t.Fatalf("run -table 1: %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-notaflag"}, io.Discard); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
