// Regression-gate mode: -compare FILE re-reads a previously committed
// baseline and fails (exit 1, via an error) when any workload's
// allocs/run regressed beyond -tolerance percent, or its latency
// (mean AND median ns/run) beyond -latency-tolerance percent. Metrics
// that improved or moved within tolerance are reported on stderr so a
// gate run doubles as a perf changelog.

package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// compareBaselines checks cur against the baseline stored at path.
// allocTolPct bounds allocs/run (deterministic, so tight); latTolPct
// bounds ns/run (wall clock, so wide).
func compareBaselines(path string, cur baseline, allocTolPct, latTolPct float64) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("compare baseline: %w", err)
	}
	defer f.Close() //platoonvet:allow errcheck -- read-only file; close cannot lose data
	var ref baseline
	if err := json.NewDecoder(f).Decode(&ref); err != nil {
		return fmt.Errorf("compare baseline %s: %w", path, err)
	}
	if ref.Quick != cur.Quick || ref.Obs != cur.Obs || ref.Spans != cur.Spans {
		return fmt.Errorf("compare baseline %s: mode mismatch (quick=%v obs=%v spans=%v vs current quick=%v obs=%v spans=%v); re-measure with matching flags",
			path, ref.Quick, ref.Obs, ref.Spans, cur.Quick, cur.Obs, cur.Spans)
	}

	refByName := make(map[string]workloadResult, len(ref.Workloads))
	for _, w := range ref.Workloads {
		refByName[w.Name] = w
	}

	var regressions []string
	for _, w := range cur.Workloads {
		old, ok := refByName[w.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "bench: %-11s new workload, nothing to compare\n", w.Name)
			continue
		}
		// Latency regresses only when mean AND median both exceed
		// the latency tolerance. Either statistic alone trips on
		// machine noise — a single GC or scheduler hiccup skews the
		// mean of a short workload by 30%+, and in heterogeneous
		// sweeps (E3 mixes 40ms and 5s runs) the median jitters at
		// config boundaries — but a genuine slowdown shifts both.
		// Baselines recorded before p50_ns existed fall back to
		// mean-only.
		meanDelta := pctDelta(float64(old.Telemetry.NSPerRun), float64(w.Telemetry.NSPerRun))
		p50Delta := meanDelta
		if old.Telemetry.P50NS > 0 && w.Telemetry.P50NS > 0 {
			p50Delta = pctDelta(float64(old.Telemetry.P50NS), float64(w.Telemetry.P50NS))
		}
		latLine := fmt.Sprintf("%s ns_per_run: %d -> %d (mean %+.1f%%, p50 %+.1f%%)",
			w.Name, old.Telemetry.NSPerRun, w.Telemetry.NSPerRun, meanDelta, p50Delta)
		if meanDelta > latTolPct && p50Delta > latTolPct {
			regressions = append(regressions, latLine)
			fmt.Fprintf(os.Stderr, "bench: REGRESSION %s exceeds +%.0f%% latency tolerance\n", latLine, latTolPct)
		} else {
			fmt.Fprintf(os.Stderr, "bench: ok %s\n", latLine)
		}

		allocDelta := pctDelta(float64(old.Telemetry.AllocsPerRun), float64(w.Telemetry.AllocsPerRun))
		allocLine := fmt.Sprintf("%s allocs_per_run: %d -> %d (%+.1f%%)",
			w.Name, old.Telemetry.AllocsPerRun, w.Telemetry.AllocsPerRun, allocDelta)
		if allocDelta > allocTolPct {
			regressions = append(regressions, allocLine)
			fmt.Fprintf(os.Stderr, "bench: REGRESSION %s exceeds +%.0f%% tolerance\n", allocLine, allocTolPct)
		} else {
			fmt.Fprintf(os.Stderr, "bench: ok %s\n", allocLine)
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d metric(s) regressed beyond tolerance (allocs +%.0f%%, latency +%.0f%%) vs %s", len(regressions), allocTolPct, latTolPct, path)
	}
	fmt.Fprintf(os.Stderr, "bench: gate passed, no metric regressed beyond tolerance (allocs +%.0f%%, latency +%.0f%%) vs %s\n", allocTolPct, latTolPct, path)
	return nil
}

// pctDelta returns the percent change from old to cur; a zero or
// missing old value compares as unchanged unless cur grew from zero.
func pctDelta(old, cur float64) float64 {
	if old == 0 {
		if cur == 0 {
			return 0
		}
		return 100 // grew from nothing: always over tolerance
	}
	return (cur - old) / old * 100
}
