package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"platoonsec/internal/engine"
)

func writeBaseline(t *testing.T, b baseline) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func wl(name string, mean, p50 int64, allocs uint64) workloadResult {
	return workloadResult{Name: name, Telemetry: engine.Telemetry{
		NSPerRun: mean, P50NS: p50, AllocsPerRun: allocs,
	}}
}

// TestCompareBaselinesLatencyAndRule pins the noise filter: latency
// regresses only when mean AND median both exceed the (wider) latency
// tolerance, while allocs gate tightly on their own tolerance. A mean
// skewed by one outlier run, or a median jittering at a config
// boundary of a heterogeneous sweep, must not fail the gate alone.
func TestCompareBaselinesLatencyAndRule(t *testing.T) {
	ref := baseline{Workloads: []workloadResult{wl("E2", 1000, 1000, 500)}}
	path := writeBaseline(t, ref)

	cases := []struct {
		name     string
		cur      workloadResult
		wantFail bool
	}{
		{"within tolerance", wl("E2", 1050, 1050, 500), false},
		{"mean outlier only", wl("E2", 1400, 990, 500), false},
		{"median jitter only", wl("E2", 990, 1400, 500), false},
		{"both above alloc tol, below latency tol", wl("E2", 1200, 1200, 500), false},
		{"both regress", wl("E2", 1400, 1400, 500), true},
		{"alloc regression", wl("E2", 1000, 1000, 600), true},
		{"alloc improvement", wl("E2", 1000, 1000, 100), false},
	}
	for _, tc := range cases {
		cur := baseline{Workloads: []workloadResult{tc.cur}}
		err := compareBaselines(path, cur, 10, 25)
		if tc.wantFail && err == nil {
			t.Errorf("%s: gate passed, want failure", tc.name)
		}
		if !tc.wantFail && err != nil {
			t.Errorf("%s: gate failed (%v), want pass", tc.name, err)
		}
	}
}

// Baselines recorded before p50_ns existed fall back to mean-only.
func TestCompareBaselinesLegacyMeanOnly(t *testing.T) {
	ref := baseline{Workloads: []workloadResult{wl("E2", 1000, 0, 500)}}
	path := writeBaseline(t, ref)

	cur := baseline{Workloads: []workloadResult{wl("E2", 1400, 990, 500)}}
	if err := compareBaselines(path, cur, 10, 25); err == nil {
		t.Error("legacy baseline: mean regression passed, want failure")
	}
	ok := baseline{Workloads: []workloadResult{wl("E2", 1150, 990, 500)}}
	if err := compareBaselines(path, ok, 10, 25); err != nil {
		t.Errorf("legacy baseline: within-tolerance mean failed: %v", err)
	}
}

func TestCompareBaselinesModeMismatch(t *testing.T) {
	path := writeBaseline(t, baseline{Quick: true})
	if err := compareBaselines(path, baseline{}, 10, 25); err == nil {
		t.Error("quick-mode baseline vs full current: want mode-mismatch error")
	}
}
