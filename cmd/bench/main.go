// Command bench measures experiment-engine throughput on the repo's
// three heaviest reproduction workloads and writes a machine-readable
// baseline so every future PR has a perf trajectory to compare against:
//
//	E2  Table II attack sweep (baseline + every attack, undefended)
//	E3  Table III defense matrix (every claimed cell, undefended + defended)
//	E5  jamming dose-response (10–50 dBm)
//	E18 sharded multi-platoon world (1000 platoons / 100k vehicles)
//	E19 platoond HTTP service, repeat traffic over the digest cache
//	E20 E18 with the epoch metrics timeline enabled (overhead vs E18)
//
// Usage:
//
//	bench [-o BENCH_baseline.json] [-quick] [-workers N] [-obs] [-spans]
//	      [-cpuprofile FILE] [-memprofile FILE]
//	      [-compare BENCH_baseline.json [-tolerance 10] [-latency-tolerance 25]]
//
//	-compare re-reads a committed baseline after measuring and fails
//	when any workload regressed — the CI perf gate (`make bench-gate`).
//	Allocation counts are deterministic, so allocs/run gates tightly at
//	-tolerance percent. Wall clock on a shared runner is not: ns/run
//	gates at the wider -latency-tolerance percent, and only when the
//	mean AND the median both exceed it (an outlier run skews only the
//	mean; config-boundary jitter in heterogeneous sweeps skews only the
//	median; a genuine slowdown shifts both).
//
//	-obs attaches the flight recorder to every run, for measuring the
//	observability overhead against a plain baseline (EXPERIMENTS.md
//	E14); the JSON records obs=true so the two are never confused.
//
//	-spans attaches the causal span tracer to every run, for measuring
//	the provenance overhead (EXPERIMENTS.md E15); records spans=true.
//	Combine with -obs to measure the full instrumentation stack.
//
// The output JSON records, per workload, the engine telemetry: runs,
// wall time, runs/sec, ns/run, events/sec, allocs/run and alloc
// bytes/run, and p50/p95/max run latency. No wall-clock date is
// recorded, so re-running on identical code and hardware produces
// small diffs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"time"

	"platoonsec/internal/engine"
	"platoonsec/internal/lab"
	"platoonsec/internal/scenario"
	"platoonsec/internal/service"
	"platoonsec/internal/sim"
	"platoonsec/internal/taxonomy"
	"platoonsec/internal/world"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

// workload is one named batch of scenario runs.
type workload struct {
	Name       string
	Experiment string
	Opts       []scenario.Options
}

// workloadResult is one workload's measured baseline entry.
type workloadResult struct {
	Name       string           `json:"name"`
	Experiment string           `json:"experiment"`
	Telemetry  engine.Telemetry `json:"telemetry"`
}

// baseline is the BENCH_baseline.json schema.
type baseline struct {
	Schema     int              `json:"schema"`
	GoVersion  string           `json:"go_version"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	NumCPU     int              `json:"num_cpu"`
	Quick      bool             `json:"quick"`
	Obs        bool             `json:"obs,omitempty"`
	Spans      bool             `json:"spans,omitempty"`
	Workloads  []workloadResult `json:"workloads"`
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	out := fs.String("o", "BENCH_baseline.json", "baseline output file")
	quick := fs.Bool("quick", false, "shorter runs (CI smoke; not a comparable baseline)")
	obsOn := fs.Bool("obs", false, "attach the flight recorder to every run (overhead measurement)")
	spansOn := fs.Bool("spans", false, "attach the causal span tracer to every run (overhead measurement)")
	workers := fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	compare := fs.String("compare", "", "baseline FILE to gate against: fail on ns/run or allocs/run regression")
	tolerance := fs.Float64("tolerance", 10, "allowed allocs/run regression percentage for -compare")
	latTolerance := fs.Float64("latency-tolerance", 25, "allowed ns/run regression percentage for -compare (wider: wall clock is noisy on shared runners, allocation counts are deterministic)")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile to FILE")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile to FILE")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := lab.DefaultConfig()
	cfg.Observe = *obsOn
	cfg.Spans = *spansOn
	if *quick {
		cfg.Duration = 10 * sim.Second
		cfg.Vehicles = 4
	}

	if *cpuprofile != "" || *memprofile != "" {
		stop, perr := engine.StartProfiles(*cpuprofile, *memprofile)
		if perr != nil {
			return perr
		}
		defer func() {
			if serr := stop(); serr != nil && err == nil {
				err = serr
			}
		}()
	}

	base := baseline{
		Schema:     1,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Quick:      *quick,
		Obs:        *obsOn,
		Spans:      *spansOn,
	}
	for _, wl := range workloads(cfg) {
		rep := scenario.SweepReport(context.Background(), wl.Opts, scenario.SweepConfig{
			Workers:        *workers,
			DiscardResults: true, // measure the streaming path; memory stays flat
		})
		if rep.Err != nil {
			return fmt.Errorf("%s run %d: %w", wl.Name, rep.ErrIndex, rep.Err)
		}
		base.Workloads = append(base.Workloads, workloadResult{
			Name:       wl.Name,
			Experiment: wl.Experiment,
			Telemetry:  rep.Telemetry,
		})
		fmt.Fprintf(os.Stderr, "bench: %-11s %s\n", wl.Name, rep.Telemetry)
	}

	// E18: the sharded world is not a scenario.Run, so it sweeps
	// through the engine directly.
	wrep := engine.Sweep(context.Background(), worldJobs(*quick, *spansOn, false),
		engine.Config[*world.Result]{
			Workers:        *workers,
			DiscardResults: true,
			EventsOf:       func(r *world.Result) uint64 { return r.UnitTicks },
		})
	if wrep.Err != nil {
		return fmt.Errorf("E18-world run %d: %w", wrep.ErrIndex, wrep.Err)
	}
	base.Workloads = append(base.Workloads, workloadResult{
		Name:       "E18-world",
		Experiment: "interchange jamming, 1000 platoons / 100k vehicles, 4 shards (EXPERIMENTS.md E18)",
		Telemetry:  wrep.Telemetry,
	})
	fmt.Fprintf(os.Stderr, "bench: %-11s %s\n", "E18-world", wrep.Telemetry)

	// E20: the same world with the per-epoch metrics timeline (and its
	// wall-clock shard timings) enabled — the delta against E18-world is
	// the observability overhead the timeline costs a real deployment.
	trep := engine.Sweep(context.Background(), worldJobs(*quick, *spansOn, true),
		engine.Config[*world.Result]{
			Workers:        *workers,
			DiscardResults: true,
			EventsOf:       func(r *world.Result) uint64 { return r.UnitTicks },
		})
	if trep.Err != nil {
		return fmt.Errorf("E20-timeline run %d: %w", trep.ErrIndex, trep.Err)
	}
	base.Workloads = append(base.Workloads, workloadResult{
		Name:       "E20-timeline",
		Experiment: "E18 world with the epoch timeline + wall timings enabled; overhead vs E18-world (EXPERIMENTS.md E20)",
		Telemetry:  trep.Telemetry,
	})
	fmt.Fprintf(os.Stderr, "bench: %-11s %s\n", "E20-timeline", trep.Telemetry)

	// E19: the platoond service path — the same simulations served over
	// HTTP with digest-keyed caching. Each job is one POST /v1/runs
	// through the full decode → normalize → digest → cache → serve
	// pipeline; repeat traffic makes the cache and single-flight layers
	// do their job, so ns/run here tracks the service overhead, not the
	// simulation.
	jobs, closeSrv, err := platoondJobs(*quick)
	if err != nil {
		return err
	}
	prep := engine.Sweep(context.Background(), jobs,
		engine.Config[int]{
			Workers:        *workers,
			DiscardResults: true,
			EventsOf:       func(n int) uint64 { return uint64(n) }, // response bytes served
		})
	closeSrv()
	if prep.Err != nil {
		return fmt.Errorf("E19-platoond run %d: %w", prep.ErrIndex, prep.Err)
	}
	base.Workloads = append(base.Workloads, workloadResult{
		Name:       "E19-platoond",
		Experiment: "platoond HTTP service, repeat traffic over the digest cache (EXPERIMENTS.md E19)",
		Telemetry:  prep.Telemetry,
	})
	fmt.Fprintf(os.Stderr, "bench: %-11s %s\n", "E19-platoond", prep.Telemetry)

	f, err := os.Create(*out)
	if err != nil {
		return fmt.Errorf("baseline file: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(base); err != nil {
		if cerr := f.Close(); cerr != nil {
			err = fmt.Errorf("%w (and closing: %v)", err, cerr)
		}
		return fmt.Errorf("baseline file: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("baseline file: %w", err)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s\n", *out)
	if *compare != "" {
		return compareBaselines(*compare, base, *tolerance, *latTolerance)
	}
	return nil
}

// workloads builds the three benchmark batches from the lab config,
// mirroring how the tables harness drives the same experiments.
func workloads(cfg lab.Config) []workload {
	none := scenario.DefensePack{}

	// E2: the Table II sweep — one baseline plus every attack class,
	// all undefended.
	e2 := []scenario.Options{cfg.OptionsFor("", none)}
	for _, a := range taxonomy.Attacks() {
		e2 = append(e2, cfg.OptionsFor(a.Key, none))
	}

	// E3: the Table III matrix — every claimed (mechanism, attack)
	// pairing, as an undefended/defended run pair per cell.
	var e3 []scenario.Options
	for _, m := range taxonomy.Mechanisms() {
		pack, err := scenario.PackForMechanism(m.Key)
		if err != nil {
			// Mechanism registry and preset table are defined together;
			// a miss is a programming error surfaced by tests.
			panic(err)
		}
		for _, attackKey := range m.Mitigates {
			e3 = append(e3, cfg.OptionsFor(attackKey, none), cfg.OptionsFor(attackKey, pack))
		}
	}

	// E5: the jamming dose-response curve.
	var e5 []scenario.Options
	for _, power := range []float64{10, 20, 30, 40, 50} {
		o := cfg.OptionsFor("jamming", none)
		o.JammerPowerDBm = power
		e5 = append(e5, o)
	}

	return []workload{
		{Name: "E2-tableII", Experiment: "Table II attack sweep (EXPERIMENTS.md E2)", Opts: e2},
		{Name: "E3-tableIII", Experiment: "Table III defense matrix (EXPERIMENTS.md E3)", Opts: e3},
		{Name: "E5-jamming", Experiment: "jamming dose-response 10-50 dBm (EXPERIMENTS.md E5)", Opts: e5},
	}
}

// platoondJobs builds the E19 batch: an in-process platoond server on
// a loopback port and one job per HTTP request — a pool of distinct
// scenarios each requested several times, so roughly 1/8 of the
// requests execute a simulation and the rest exercise the cache path.
// Returns the jobs and a server shutdown func.
func platoondJobs(quick bool) ([]engine.Job[int], func(), error) {
	srv, err := service.NewServer(service.Config{Now: time.Now, MaxInflight: runtime.GOMAXPROCS(0)})
	if err != nil {
		return nil, nil, err
	}
	ts := httptest.NewServer(srv.Handler())

	distinct, total, durationSec := 8, 64, 5
	if quick {
		distinct, total, durationSec = 4, 16, 2
	}
	attacks := []string{"", "jamming", "sybil", "replay"}
	jobs := make([]engine.Job[int], total)
	for i := range jobs {
		body := fmt.Sprintf(`{"seed": %d, "duration_sec": %d, "attack": %q}`,
			i%distinct+1, durationSec, attacks[i%len(attacks)])
		jobs[i] = func(context.Context) (int, error) {
			resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
			if err != nil {
				return 0, err
			}
			n, err := io.Copy(io.Discard, resp.Body)
			if cerr := resp.Body.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return 0, err
			}
			if resp.StatusCode != 200 {
				return 0, fmt.Errorf("platoond answered %d", resp.StatusCode)
			}
			return int(n), nil
		}
	}
	return jobs, ts.Close, nil
}

// worldJobs builds the E18/E20 batch: the interchange-jamming world
// at 1000 platoons / 100k vehicles over four seeds. Each run keeps
// Workers=1 so parallelism lives at the engine level, same as every
// other workload, and ns/run stays comparable across machines. With
// timeline set the world records its per-epoch metrics timeline with
// wall-clock shard timings — the E20 overhead configuration.
func worldJobs(quick, spans, timeline bool) []engine.Job[*world.Result] {
	wo := world.DefaultOptions()
	wo.Platoons = 1000
	wo.VehiclesPerPlatoon = 100
	wo.Shards = 4
	wo.Workers = 1
	wo.AttackKey = "jamming"
	wo.Spans = spans
	wo.Timeline = timeline
	if timeline {
		wo.WallClock = func() int64 { return time.Now().UnixNano() }
	}
	seeds := 4
	if quick {
		wo.Platoons = 100
		wo.VehiclesPerPlatoon = 10
		wo.Duration = 10 * sim.Second
		seeds = 2
	}
	jobs := make([]engine.Job[*world.Result], seeds)
	for i := range jobs {
		o := wo
		o.Seed = int64(i + 1)
		jobs[i] = func(context.Context) (*world.Result, error) { return world.Run(o) }
	}
	return jobs
}
