package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"platoonsec/internal/lab"
	"platoonsec/internal/sim"
)

func TestWorkloadsCoverE2E3E5(t *testing.T) {
	cfg := lab.DefaultConfig()
	cfg.Duration = 10 * sim.Second
	cfg.Vehicles = 4
	wls := workloads(cfg)
	if len(wls) != 3 {
		t.Fatalf("got %d workloads, want 3", len(wls))
	}
	wantMin := map[string]int{
		"E2-tableII":  10, // baseline + 9 attacks
		"E3-tableIII": 36, // 18 claimed cells × (undefended + defended)
		"E5-jamming":  5,  // 10..50 dBm
	}
	for _, wl := range wls {
		if min, ok := wantMin[wl.Name]; !ok || len(wl.Opts) < min {
			t.Errorf("workload %s has %d runs, want >= %d", wl.Name, len(wl.Opts), wantMin[wl.Name])
		}
	}
}

func TestRunQuickWritesPopulatedBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick workload set")
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := run([]string{"-quick", "-o", path}); err != nil {
		t.Fatalf("bench -quick: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("baseline is not valid JSON: %v", err)
	}
	if len(base.Workloads) != 6 {
		t.Fatalf("baseline has %d workloads, want 6", len(base.Workloads))
	}
	for _, wl := range base.Workloads {
		tele := wl.Telemetry
		if tele.Executed == 0 || tele.Executed != tele.Runs {
			t.Errorf("%s: executed %d of %d runs", wl.Name, tele.Executed, tele.Runs)
		}
		if tele.RunsPerSec <= 0 || tele.NSPerRun <= 0 {
			t.Errorf("%s: empty throughput telemetry: %+v", wl.Name, tele)
		}
		if tele.AllocsPerRun == 0 {
			t.Errorf("%s: allocs/run not recorded", wl.Name)
		}
		if tele.Events == 0 || tele.EventsPerSec <= 0 {
			t.Errorf("%s: kernel events not recorded", wl.Name)
		}
		if tele.P50NS <= 0 || tele.P95NS < tele.P50NS || tele.MaxNS < tele.P95NS {
			t.Errorf("%s: malformed latency quantiles p50=%d p95=%d max=%d",
				wl.Name, tele.P50NS, tele.P95NS, tele.MaxNS)
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-notaflag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestPlatoondJobsShape: the E19 batch has the advertised repeat
// structure — a small distinct-scenario pool requested several times,
// so the cache path dominates.
func TestPlatoondJobsShape(t *testing.T) {
	jobs, closeSrv, err := platoondJobs(true)
	if err != nil {
		t.Fatal(err)
	}
	defer closeSrv()
	if len(jobs) != 16 {
		t.Fatalf("quick E19 batch has %d jobs, want 16", len(jobs))
	}
}
