// Command platoonsim runs one platoon-security experiment and reports
// the measured impact.
//
// Usage:
//
//	platoonsim [flags]
//
//	-seed N          random seed (default 1)
//	-duration SECS   simulated seconds (default 60)
//	-vehicles N      platoon size incl. leader (default 8)
//	-attack KEY      attack to inject: sybil, fake-maneuver, replay,
//	                 jamming, eavesdropping, dos, impersonation,
//	                 sensor-spoofing, malware (default: none)
//	-attack-at SECS  attack arming time (default 10)
//	-defense LIST    comma-separated mechanisms: keys, rsu,
//	                 control-algorithms, hybrid-comms, onboard, all
//	-joiner          add a genuine joiner requesting admission
//	-trace FILE      write a CSV time series to FILE
//	-events FILE     write a JSONL event timeline to FILE
//	-obs             attach the flight recorder and print the metric
//	                 snapshot (counters, gauges, histograms) after the run
//	-obs-level LVL   flight-recorder admission severity: trace, debug,
//	                 info, warn, error (default info)
//	-trace-json FILE write a Chrome trace-event / Perfetto JSON timeline
//	                 of the run to FILE (implies -obs; load it at
//	                 ui.perfetto.dev); with -spans the timeline includes
//	                 flow arrows tracing each frame's causal chain
//	-spans           attach the causal span tracer and print its
//	                 admission statistics after the run
//	-forensics       print the attack→effect attribution report: per
//	                 effect kind, occurrence counts and the top causal
//	                 chains linking it back to the attacker (implies
//	                 -spans)
//	-world           run the sharded multi-platoon highway world instead
//	                 of a single-platoon experiment: -vehicles becomes
//	                 vehicles per platoon, and only the world-scale
//	                 attacks (jamming, sybil) apply
//	-timeline        world mode: record the per-epoch metrics timeline
//	                 (frames, ticks, wall-clock shard timings) and print
//	                 it after the run; the simulation result stays
//	                 byte-identical with it on or off
//	-shards N        world mode: spatial kernel shards (default 1);
//	                 results are byte-identical at any shard count
//	-platoons N      world mode: platoon count (default 40)
//	-free N          world mode: free (unattached) vehicles (default 10)
//	-seeds N         run N consecutive seeds starting at -seed, in
//	                 parallel on the experiment engine (default 1)
//	-workers N       parallel workers for -seeds sweeps (0 = GOMAXPROCS)
//	-stats           print engine telemetry (runs/sec, p50/p95) to stderr
//	-cpuprofile FILE write a pprof CPU profile of the run(s)
//	-memprofile FILE write a pprof heap profile after the run(s)
//
// Examples:
//
//	platoonsim -attack jamming
//	platoonsim -attack jamming -defense hybrid-comms
//	platoonsim -attack sybil -defense control-algorithms -joiner
//	platoonsim -attack jamming -seeds 20 -workers 4 -stats
//	platoonsim -attack jamming -obs -trace-json jam.trace.json
//	platoonsim -attack impersonation -forensics
//	platoonsim -world -platoons 1000 -vehicles 100 -shards 4 -attack jamming
//	platoonsim -world -timeline -attack jamming
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"platoonsec"
	"platoonsec/internal/obs/timeline"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "platoonsim:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("platoonsim", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "random seed")
	duration := fs.Float64("duration", 60, "simulated seconds")
	vehicles := fs.Int("vehicles", 8, "platoon size including leader")
	attackKey := fs.String("attack", "", "attack key (empty = baseline)")
	attackAt := fs.Float64("attack-at", 10, "attack arming time, seconds")
	defense := fs.String("defense", "", "comma-separated mechanism keys or 'all'")
	joiner := fs.Bool("joiner", false, "add a genuine joiner")
	traceFile := fs.String("trace", "", "CSV trace output file")
	eventsFile := fs.String("events", "", "JSONL event-timeline output file")
	obsOn := fs.Bool("obs", false, "attach the flight recorder and print its snapshot")
	obsLevel := fs.String("obs-level", "info", "flight-recorder admission severity (trace|debug|info|warn|error)")
	traceJSON := fs.String("trace-json", "", "Chrome trace-event / Perfetto JSON output file (implies -obs)")
	spansOn := fs.Bool("spans", false, "attach the causal span tracer and print its statistics")
	forensicsOn := fs.Bool("forensics", false, "print the attack→effect attribution report (implies -spans)")
	worldOn := fs.Bool("world", false, "run the sharded multi-platoon highway world")
	timelineOn := fs.Bool("timeline", false, "world mode: record the per-epoch metrics timeline with wall-clock shard timings")
	shards := fs.Int("shards", 1, "world mode: spatial kernel shards")
	platoons := fs.Int("platoons", 40, "world mode: platoon count")
	freeAgents := fs.Int("free", 10, "world mode: free (unattached) vehicles")
	seedsN := fs.Int("seeds", 1, "run N consecutive seeds starting at -seed")
	workers := fs.Int("workers", 0, "parallel workers for -seeds sweeps (0 = GOMAXPROCS)")
	stats := fs.Bool("stats", false, "print engine telemetry to stderr")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile to FILE")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile to FILE")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *seedsN < 1 {
		return fmt.Errorf("-seeds must be >= 1 (got %d)", *seedsN)
	}
	if *seedsN > 1 && (*traceFile != "" || *eventsFile != "" || *traceJSON != "" || *forensicsOn) {
		return fmt.Errorf("-trace/-events/-trace-json/-forensics capture a single run; use -seeds 1")
	}
	if *worldOn && (*seedsN > 1 || *traceFile != "" || *traceJSON != "" || *obsOn || *joiner || *defense != "") {
		return fmt.Errorf("-world is a single world run; -seeds/-trace/-trace-json/-obs/-joiner/-defense do not apply")
	}
	if *timelineOn && !*worldOn {
		return fmt.Errorf("-timeline applies to -world runs")
	}
	minLevel, ok := platoonsec.ParseObsLevel(*obsLevel)
	if !ok {
		return fmt.Errorf("unknown -obs-level %q (valid: %s)",
			*obsLevel, strings.Join(platoonsec.ObsLevelNames(), ", "))
	}

	o := platoonsec.DefaultOptions()
	o.Seed = *seed
	o.Duration = platoonsec.Time(*duration * float64(platoonsec.Second))
	o.Vehicles = *vehicles
	o.AttackKey = *attackKey
	o.AttackStart = platoonsec.Time(*attackAt * float64(platoonsec.Second))
	o.WithJoiner = *joiner

	if *defense != "" {
		pack, err := parseDefense(*defense)
		if err != nil {
			return err
		}
		o.Defense = pack
	}
	// A close failure means the kernel's buffered artifact bytes may
	// never have reached disk: report it unless the run already failed.
	closeOutput := func(f *os.File, what string) {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("%s: %w", what, cerr)
		}
	}
	if *traceFile != "" {
		f, ferr := os.Create(*traceFile)
		if ferr != nil {
			return fmt.Errorf("trace file: %w", ferr)
		}
		defer closeOutput(f, "trace file")
		o.TraceCSV = f
	}
	if *eventsFile != "" {
		f, ferr := os.Create(*eventsFile)
		if ferr != nil {
			return fmt.Errorf("events file: %w", ferr)
		}
		defer closeOutput(f, "events file")
		o.EventsJSONL = f
	}
	o.Observe = *obsOn || *traceJSON != ""
	o.ObsMinLevel = minLevel
	o.Spans = *spansOn || *forensicsOn
	if *traceJSON != "" {
		f, ferr := os.Create(*traceJSON)
		if ferr != nil {
			return fmt.Errorf("trace-json file: %w", ferr)
		}
		defer closeOutput(f, "trace-json file")
		o.ChromeTrace = f
	}

	if *cpuprofile != "" || *memprofile != "" {
		stop, perr := platoonsec.StartProfiles(*cpuprofile, *memprofile)
		if perr != nil {
			return perr
		}
		defer func() {
			if serr := stop(); serr != nil && err == nil {
				err = serr
			}
		}()
	}

	if *worldOn {
		wo := platoonsec.DefaultWorldOptions()
		wo.Seed = 0        // inherit -seed
		wo.Duration = 0    // inherit -duration
		wo.AttackKey = ""  // inherit -attack
		wo.AttackStart = 0 // inherit -attack-at
		wo.Shards = *shards
		wo.Workers = *workers
		wo.Platoons = *platoons
		wo.VehiclesPerPlatoon = *vehicles
		wo.FreeAgents = *freeAgents
		wo.Timeline = *timelineOn
		if *timelineOn {
			// Wall timings are operator diagnostics; the injected clock
			// keeps time.Now out of internal packages (nowalltime) and
			// out of every simulation observable.
			wo.WallClock = func() int64 { return time.Now().UnixNano() }
		}
		o.World = &wo
		r, werr := platoonsec.RunWorld(o)
		if werr != nil {
			return werr
		}
		fmt.Print(r.String())
		printTimeline(r.Timeline)
		if o.Spans {
			printSpans(r.Spans)
		}
		if *forensicsOn {
			printForensics(r.Forensics)
		}
		return nil
	}

	optsList := make([]platoonsec.Options, *seedsN)
	for i := range optsList {
		oi := o
		oi.Seed = *seed + int64(i)
		optsList[i] = oi
	}
	rep := platoonsec.SweepWithReport(context.Background(), optsList,
		platoonsec.SweepConfig{Workers: *workers})
	if rep.Err != nil {
		if *seedsN == 1 {
			return rep.Err
		}
		return fmt.Errorf("seed %d: %w", optsList[rep.ErrIndex].Seed, rep.Err)
	}
	if *seedsN == 1 {
		fmt.Print(rep.Results[0].String())
		if o.Observe {
			printSnapshot(rep.Results[0].Obs)
		}
		if o.Spans {
			printSpans(rep.Results[0].Spans)
		}
		if *forensicsOn {
			printForensics(rep.Results[0].Forensics)
		}
	} else {
		for i, r := range rep.Results {
			fmt.Printf("seed %-4d maxSpacingErr=%.2fm disbanded=%.0f%% PDR=%.3f ghosts=%d ejected=%d\n",
				optsList[i].Seed, r.MaxSpacingErr, r.DisbandedFrac*100, r.PDR,
				r.GhostMembers, r.VictimsEjected)
		}
		if o.Observe {
			printCounters("obs counters (all seeds):", rep.Telemetry.Counters)
		}
	}
	if *stats {
		fmt.Fprintln(os.Stderr, "engine:", rep.Telemetry.String())
	}
	return nil
}

// printTimeline renders the world's per-epoch timeline: frame and
// tick throughput per epoch and, when wall timings were recorded, the
// epoch wall time with its slowest shard step (last 8 epochs).
func printTimeline(s *timeline.Series) {
	if s == nil {
		return
	}
	first := 0
	if len(s.Samples) > 8 {
		first = len(s.Samples) - 8
		fmt.Printf("  ... %d earlier epochs elided\n", first)
	}
	for _, sm := range s.Samples[first:] {
		line := fmt.Sprintf("  epoch[%d] frames=%d ticks=%d", sm.Index,
			sm.Counters["world.frames_tx"], sm.Counters["world.unit_ticks"])
		if wall, ok := sm.Gauges["world.epoch_wall_ms"]; ok {
			line += fmt.Sprintf(" wall=%.2fms slowest_shard=%.2fms",
				wall, sm.Gauges["world.shard_step_ms_max"])
		}
		fmt.Println(line)
	}
}

// printSpans renders one run's span-store admission statistics.
func printSpans(s *platoonsec.SpanStats) {
	if s == nil {
		return
	}
	fmt.Printf("spans: admitted=%d dropped=%d\n", s.Admitted, s.Dropped)
}

// printForensics renders the attack→effect attribution report: each
// effect kind with its occurrence/attribution counts and the retained
// causal chains, root (attack side) first.
func printForensics(f *platoonsec.Forensics) {
	if f == nil {
		return
	}
	fmt.Println("forensics:")
	if len(f.Effects) == 0 {
		fmt.Println("  (no effects recorded)")
		return
	}
	for _, e := range f.Effects {
		fmt.Printf("  %-24s count=%d attributed=%d\n", e.Kind, e.Count, e.Attributed)
		for _, ch := range e.Chains {
			fmt.Printf("    %s\n", ch)
		}
	}
}

// printSnapshot renders one run's observability snapshot.
func printSnapshot(s *platoonsec.ObsSnapshot) {
	if s == nil {
		return
	}
	fmt.Printf("observability: records=%d dropped=%d\n", s.Records, s.Dropped)
	printCounters("  counters:", s.Counters)
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Printf("    %s = %g\n", name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		fmt.Printf("    %s: n=%d min=%.1f p50=%.1f p95=%.1f max=%.1f\n",
			name, h.Count, h.Min, h.Quantile(0.5), h.Quantile(0.95), h.Max)
	}
}

func printCounters(header string, counters map[string]uint64) {
	if len(counters) == 0 {
		return
	}
	fmt.Println(header)
	for _, name := range sortedKeys(counters) {
		fmt.Printf("    %-22s %d\n", name, counters[name])
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func parseDefense(spec string) (platoonsec.DefensePack, error) {
	if spec == "all" {
		return platoonsec.AllDefenses(), nil
	}
	var pack platoonsec.DefensePack
	for _, key := range strings.Split(spec, ",") {
		key = strings.TrimSpace(key)
		if key == "" {
			continue
		}
		p, err := platoonsec.PackForMechanism(key)
		if err != nil {
			return pack, err
		}
		pack = merge(pack, p)
	}
	return pack, nil
}

func merge(a, b platoonsec.DefensePack) platoonsec.DefensePack {
	return platoonsec.DefensePack{
		PKI:        a.PKI || b.PKI,
		Encrypt:    a.Encrypt || b.Encrypt,
		RateLimit:  a.RateLimit || b.RateLimit,
		VPDADA:     a.VPDADA || b.VPDADA,
		Trust:      a.Trust || b.Trust,
		Hybrid:     a.Hybrid || b.Hybrid,
		Fusion:     a.Fusion || b.Fusion,
		GapTimeout: a.GapTimeout || b.GapTimeout,
	}
}
