package main

import (
	"os"
	"strings"
	"testing"
)

func TestParseDefense(t *testing.T) {
	tests := []struct {
		spec    string
		wantErr bool
		check   func(p interface{ Any() bool }) bool
	}{
		{"keys", false, nil},
		{"keys,hybrid-comms", false, nil},
		{"all", false, nil},
		{" keys , onboard ", false, nil},
		{"astrology", true, nil},
		{"", false, nil},
	}
	for _, tt := range tests {
		t.Run(tt.spec, func(t *testing.T) {
			pack, err := parseDefense(tt.spec)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("parseDefense(%q) accepted", tt.spec)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseDefense(%q): %v", tt.spec, err)
			}
			if tt.spec != "" && !pack.Any() {
				t.Fatalf("parseDefense(%q) produced empty pack", tt.spec)
			}
		})
	}
}

func TestParseDefenseMergesUnion(t *testing.T) {
	pack, err := parseDefense("keys,hybrid-comms")
	if err != nil {
		t.Fatal(err)
	}
	if !pack.PKI || !pack.Encrypt || !pack.Hybrid {
		t.Fatalf("merged pack missing fields: %+v", pack)
	}
}

func TestRunBaseline(t *testing.T) {
	if err := run([]string{"-duration", "5", "-vehicles", "3"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-attack", "nonexistent", "-duration", "5", "-vehicles", "3"}); err == nil {
		t.Fatal("unknown attack accepted")
	}
	if err := run([]string{"-defense", "astrology"}); err == nil {
		t.Fatal("unknown defense accepted")
	}
	if err := run([]string{"-notaflag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunWithTrace(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/trace.csv"
	if err := run([]string{"-duration", "5", "-vehicles", "3", "-trace", path}); err != nil {
		t.Fatalf("run with trace: %v", err)
	}
	data, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(data, "t_s,leader_speed") {
		t.Fatalf("trace header missing: %q", firstLine(data))
	}
	if strings.Count(data, "\n") < 40 {
		t.Fatalf("trace too short: %d lines", strings.Count(data, "\n"))
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func readFile(path string) (string, error) {
	b, err := os.ReadFile(path)
	return string(b), err
}
