package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestSelfHostedLoad runs a small self-hosted load test end to end and
// checks the measured cache behavior: every distinct scenario runs at
// most once, everything else is served from the cache, and the served
// bytes match a direct scenario.Run.
func TestSelfHostedLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	jsonPath := filepath.Join(t.TempDir(), "report.json")
	var out bytes.Buffer
	err := run([]string{
		"-requests", "60", "-scenarios", "4", "-concurrency", "6",
		"-duration", "3", "-verify", "-json", jsonPath,
	}, &out)
	if err != nil {
		t.Fatalf("platoonload: %v\n%s", err, out.String())
	}

	b, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("parsing report: %v", err)
	}
	if rep.Status["200"] != 60 {
		t.Errorf("status 200 count = %d, want 60 (%v)", rep.Status["200"], rep.Status)
	}
	if rep.Cache["miss"] != 4 {
		t.Errorf("misses = %d, want exactly one per scenario (4); mix %v", rep.Cache["miss"], rep.Cache)
	}
	if rep.HitRate < 0.90 {
		t.Errorf("hit rate %.2f, want >= 0.90", rep.HitRate)
	}
	if rep.Verified != 4 || rep.Mismatches != 0 {
		t.Errorf("verified=%d mismatches=%d, want 4 and 0", rep.Verified, rep.Mismatches)
	}
}

// TestScenarioPoolIsDistinct guards the pool builder: every entry must
// normalize to a distinct digest, or the hit-rate arithmetic lies.
func TestScenarioPoolIsDistinct(t *testing.T) {
	pool := loadScenarios(24, 1, 5)
	seen := make(map[string]int)
	for i, r := range pool {
		if err := r.Normalize(); err != nil {
			t.Fatalf("scenario %d does not normalize: %v", i, err)
		}
		b, err := json.Marshal(&r)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[string(b)]; dup {
			t.Errorf("scenarios %d and %d are identical: %s", prev, i, b)
		}
		seen[string(b)] = i
	}
}

// TestQuantile pins the nearest-rank read.
func TestQuantile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := quantile(vals, 0.50); got != 5 {
		t.Errorf("p50 = %g, want 5", got)
	}
	if got := quantile(vals, 0.95); got != 9 {
		t.Errorf("p95 = %g, want 9", got)
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}
}
