// Command platoonload drives sustained traffic against a platoond
// server and reports what the digest-keyed cache did with it.
//
// It fires -requests POST /v1/runs calls at -concurrency workers,
// cycling deterministically through a pool of -scenarios distinct
// experiments, then reports the cache source mix (miss / hit / spill /
// dedup, straight from the X-Platoond-Cache response headers), latency
// percentiles, throughput, and — with -verify — whether every served
// body is byte-identical to a direct in-process scenario.Run of the
// same normalized request.
//
// With no -url it self-hosts: an in-process platoond server on a
// loopback port (with aggressive timeline sampling), so one command
// demonstrates the whole stack. After the load it pulls the server's
// own GET /v1/slo and GET /v1/timeline view — availability,
// saturation, hit-rate evolution, latency-objective attainment — into
// the report. The report is human-readable on stdout and, with -json,
// a machine snapshot (this is how experiments E19 and E20 in
// EXPERIMENTS.md are measured).
//
// Usage:
//
//	platoonload [flags]
//
//	-url URL         target server (default: self-host in-process)
//	-requests N      total requests to send (default 2000)
//	-concurrency C   concurrent client workers (default 16)
//	-scenarios N     distinct experiments in the pool (default 20)
//	-seed N          base seed for the scenario pool (default 1)
//	-duration SECS   simulated seconds per run (default 10)
//	-tenant NAME     X-Platoond-Tenant header value (default "loadgen")
//	-verify          recompute every scenario locally and compare bytes
//	-json FILE       write the report as JSON to FILE ("-" = stdout)
//	-inflight N      self-host: concurrent simulations (default 4)
//
// Examples:
//
//	platoonload -verify
//	platoonload -url http://localhost:8099 -requests 5000 -concurrency 32
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"platoonsec/internal/obs/timeline"
	"platoonsec/internal/scenario"
	"platoonsec/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "platoonload:", err)
		os.Exit(1)
	}
}

// report is the load test's measured outcome.
type report struct {
	URL         string         `json:"url"`
	Requests    int            `json:"requests"`
	Scenarios   int            `json:"scenarios"`
	Concurrency int            `json:"concurrency"`
	ElapsedSec  float64        `json:"elapsed_sec"`
	Throughput  float64        `json:"throughput_rps"`
	Cache       map[string]int `json:"cache"`
	HitRate     float64        `json:"hit_rate"`
	Status      map[string]int `json:"status"`
	P50Ms       float64        `json:"p50_ms"`
	P95Ms       float64        `json:"p95_ms"`
	P99Ms       float64        `json:"p99_ms"`
	MeanMs      float64        `json:"mean_ms"`
	Verified    int            `json:"verified,omitempty"`
	Mismatches  int            `json:"mismatches,omitempty"`
	// SLO and Timeline are the server's own view of the load, pulled
	// from GET /v1/slo and GET /v1/timeline after the last request
	// (absent when the target has observability disabled).
	SLO      *service.SLOReport `json:"slo,omitempty"`
	Timeline *timelineSummary   `json:"timeline,omitempty"`
}

// timelineSummary condenses the server's metrics timeline into the
// per-sample evolution the load test cares about: traffic, hit rate
// and request latency over time.
type timelineSummary struct {
	Recorded uint64          `json:"recorded"`
	Dropped  uint64          `json:"dropped"`
	Points   []timelinePoint `json:"points"`
}

// timelinePoint is one timeline sample reduced to load-test
// indicators (deltas over that sampling window).
type timelinePoint struct {
	AtNS        int64   `json:"at_ns"`
	RunRequests uint64  `json:"run_requests"`
	HitRate     float64 `json:"hit_rate"`
	P95Ms       float64 `json:"p95_ms"`
}

// fetchObs pulls the server-side SLO report and timeline evolution,
// best-effort: a target without the endpoints (older build, disabled
// observability) just leaves both nil.
func fetchObs(client *http.Client, base string) (*service.SLOReport, *timelineSummary) {
	var slo service.SLOReport
	if !getInto(client, base+"/v1/slo", &slo) {
		return nil, nil
	}
	var tl struct {
		Recorded uint64            `json:"recorded"`
		Dropped  uint64            `json:"dropped"`
		Samples  []timeline.Sample `json:"samples"`
	}
	if !getInto(client, base+"/v1/timeline", &tl) {
		return &slo, nil
	}
	sum := &timelineSummary{Recorded: tl.Recorded, Dropped: tl.Dropped}
	for _, s := range tl.Samples {
		hits := s.Counters["service.cache_hits"] + s.Counters["service.cache_spill_hits"]
		lookups := hits + s.Counters["service.cache_misses"]
		p := timelinePoint{
			AtNS:        s.AtNS,
			RunRequests: s.Counters["service.run_requests"],
			P95Ms:       s.Histograms["service.request_ms"].P95,
		}
		if lookups > 0 {
			p.HitRate = float64(hits) / float64(lookups)
		}
		sum.Points = append(sum.Points, p)
	}
	return &slo, sum
}

// getInto decodes a 200 JSON response into v; false on any error or
// non-200 (the caller treats that as "endpoint unavailable").
func getInto(client *http.Client, url string, v any) bool {
	resp, err := client.Get(url)
	if err != nil {
		return false
	}
	err = json.NewDecoder(resp.Body).Decode(v)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	return err == nil && resp.StatusCode == 200
}

// loadScenarios builds the deterministic request pool: n distinct
// experiments cycling through the attack registry with distinct seeds.
func loadScenarios(n int, baseSeed int64, durationSec float64) []service.RunRequest {
	attacks := []string{"", "jamming", "sybil", "replay", "dos", "fake-maneuver"}
	defenses := [][]string{nil, {"pki", "vpd-ada"}, {"ratelimit", "trust"}}
	pool := make([]service.RunRequest, n)
	for i := range pool {
		pool[i] = service.RunRequest{
			Seed:        baseSeed + int64(i),
			DurationSec: durationSec,
			Attack:      attacks[i%len(attacks)],
			Defense:     defenses[i%len(defenses)],
		}
	}
	return pool
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("platoonload", flag.ContinueOnError)
	url := fs.String("url", "", "target server URL (empty = self-host)")
	requests := fs.Int("requests", 2000, "total requests")
	concurrency := fs.Int("concurrency", 16, "concurrent client workers")
	scenarios := fs.Int("scenarios", 20, "distinct experiments in the pool")
	seed := fs.Int64("seed", 1, "base seed for the scenario pool")
	durationSec := fs.Float64("duration", 10, "simulated seconds per run")
	tenant := fs.String("tenant", "loadgen", "X-Platoond-Tenant header")
	verify := fs.Bool("verify", false, "compare served bytes against direct scenario.Run")
	jsonOut := fs.String("json", "", "write the JSON report to FILE ('-' = stdout)")
	inflight := fs.Int("inflight", 4, "self-host: concurrent simulations")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *requests < 1 || *concurrency < 1 || *scenarios < 1 {
		return fmt.Errorf("-requests, -concurrency and -scenarios must be positive")
	}

	base := *url
	if base == "" {
		// The self-hosted server samples its timeline aggressively so
		// even a short load leaves an SLO evolution worth reporting.
		srv, err := service.NewServer(service.Config{
			Now:              time.Now,
			MaxInflight:      *inflight,
			MaxQueue:         *requests,
			TimelineInterval: 250 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)  //platoonvet:allow errcheck -- the listener dies with the process; Serve's close error has no reader
		defer hs.Close() //platoonvet:allow errcheck -- process exit tears the socket down regardless
		base = "http://" + ln.Addr().String()
		fmt.Fprintln(os.Stderr, "platoonload: self-hosting platoond at", base)
	}

	pool := loadScenarios(*scenarios, *seed, *durationSec)
	bodies := make([][]byte, len(pool))
	for i, r := range pool {
		b, err := json.Marshal(r)
		if err != nil {
			return err
		}
		bodies[i] = b
	}

	// Fire the load: worker w sends requests w, w+C, w+2C, ... so the
	// scenario mix is deterministic regardless of scheduling.
	var mu sync.Mutex
	cacheMix := make(map[string]int)
	statusMix := make(map[string]int)
	latencies := make([]float64, 0, *requests)
	var firstErr error
	client := &http.Client{Timeout: 5 * time.Minute}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < *requests; i += *concurrency {
				body := bodies[i%len(bodies)]
				t0 := time.Now()
				req, err := http.NewRequest("POST", base+"/v1/runs", bytes.NewReader(body))
				if err == nil {
					req.Header.Set("Content-Type", "application/json")
					req.Header.Set("X-Platoond-Tenant", *tenant)
					var resp *http.Response
					resp, err = client.Do(req)
					if err == nil {
						_, err = io.Copy(io.Discard, resp.Body)
						if cerr := resp.Body.Close(); err == nil {
							err = cerr
						}
						ms := time.Since(t0).Seconds() * 1e3
						mu.Lock()
						statusMix[fmt.Sprint(resp.StatusCode)]++
						if src := resp.Header.Get("X-Platoond-Cache"); src != "" {
							cacheMix[src]++
						}
						latencies = append(latencies, ms)
						mu.Unlock()
					}
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return firstErr
	}

	rep := report{
		URL:         base,
		Requests:    *requests,
		Scenarios:   *scenarios,
		Concurrency: *concurrency,
		ElapsedSec:  elapsed.Seconds(),
		Throughput:  float64(len(latencies)) / elapsed.Seconds(),
		Cache:       cacheMix,
		Status:      statusMix,
	}
	served := cacheMix["hit"] + cacheMix["spill"] + cacheMix["dedup"] + cacheMix["miss"]
	if served > 0 {
		rep.HitRate = float64(cacheMix["hit"]+cacheMix["spill"]+cacheMix["dedup"]) / float64(served)
	}
	sort.Float64s(latencies)
	rep.P50Ms = quantile(latencies, 0.50)
	rep.P95Ms = quantile(latencies, 0.95)
	rep.P99Ms = quantile(latencies, 0.99)
	var sum float64
	for _, v := range latencies {
		sum += v
	}
	if len(latencies) > 0 {
		rep.MeanMs = sum / float64(len(latencies))
	}

	rep.SLO, rep.Timeline = fetchObs(client, base)

	if *verify {
		verified, mismatches, err := verifyBytes(client, base, *tenant, pool)
		if err != nil {
			return err
		}
		rep.Verified, rep.Mismatches = verified, mismatches
		if mismatches > 0 {
			return fmt.Errorf("%d of %d scenarios served bytes differing from a direct scenario.Run", mismatches, verified)
		}
	}

	if err := printReport(stdout, &rep); err != nil {
		return err
	}
	if *jsonOut != "" {
		b, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if *jsonOut == "-" {
			_, err = stdout.Write(b)
			return err
		}
		return os.WriteFile(*jsonOut, b, 0o644)
	}
	return nil
}

// verifyBytes re-fetches each scenario from the (now warm) cache and
// compares the served body byte-for-byte against a direct in-process
// run of the same normalized request.
func verifyBytes(client *http.Client, base, tenant string, pool []service.RunRequest) (verified, mismatches int, err error) {
	for _, r := range pool {
		body, merr := json.Marshal(r)
		if merr != nil {
			return verified, mismatches, merr
		}
		req, rerr := http.NewRequest("POST", base+"/v1/runs", bytes.NewReader(body))
		if rerr != nil {
			return verified, mismatches, rerr
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Platoond-Tenant", tenant)
		resp, derr := client.Do(req)
		if derr != nil {
			return verified, mismatches, derr
		}
		served, rerr := io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); rerr == nil {
			rerr = cerr
		}
		if rerr != nil {
			return verified, mismatches, rerr
		}
		if resp.StatusCode != 200 {
			return verified, mismatches, fmt.Errorf("verify: scenario seed %d answered %d: %s", r.Seed, resp.StatusCode, served)
		}

		nr := r // normalize a copy the way the server does
		if nerr := nr.Normalize(); nerr != nil {
			return verified, mismatches, nerr
		}
		opts, oerr := nr.Options(1, 1, nil)
		if oerr != nil {
			return verified, mismatches, oerr
		}
		res, serr := scenario.Run(opts)
		if serr != nil {
			return verified, mismatches, serr
		}
		local, merr2 := json.Marshal(res)
		if merr2 != nil {
			return verified, mismatches, merr2
		}
		verified++
		if !bytes.Equal(served, local) {
			mismatches++
			fmt.Fprintf(os.Stderr, "platoonload: MISMATCH seed %d attack %q: served %d bytes, local %d bytes\n",
				r.Seed, r.Attack, len(served), len(local))
		}
	}
	return verified, mismatches, nil
}

// quantile reads the q-quantile from sorted values (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// printReport writes the human-readable summary.
func printReport(w io.Writer, r *report) error {
	var b strings.Builder
	fmt.Fprintf(&b, "platoonload: %d requests x %d scenarios @ %d workers against %s\n",
		r.Requests, r.Scenarios, r.Concurrency, r.URL)
	fmt.Fprintf(&b, "  elapsed    %.2fs (%.0f req/s)\n", r.ElapsedSec, r.Throughput)
	fmt.Fprintf(&b, "  cache      miss=%d hit=%d spill=%d dedup=%d (hit rate %.1f%%)\n",
		r.Cache["miss"], r.Cache["hit"], r.Cache["spill"], r.Cache["dedup"], 100*r.HitRate)
	fmt.Fprintf(&b, "  latency    p50=%.2fms p95=%.2fms p99=%.2fms mean=%.2fms\n",
		r.P50Ms, r.P95Ms, r.P99Ms, r.MeanMs)
	keys := make([]string, 0, len(r.Status))
	for k := range r.Status {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "  status %s  %d\n", k, r.Status[k])
	}
	if r.SLO != nil {
		fmt.Fprintf(&b, "  slo        availability=%.3f saturation=%.3f hit_rate=%.3f latency<=%.0fms attained=%.3f (%s)\n",
			r.SLO.Availability, r.SLO.Saturation, r.SLO.HitRate,
			r.SLO.LatencyObjectiveMS, r.SLO.LatencyAttainment, r.SLO.Source)
	}
	if r.Timeline != nil && len(r.Timeline.Points) > 0 {
		fmt.Fprintf(&b, "  timeline   %d samples; hit-rate evolution:", len(r.Timeline.Points))
		for _, p := range r.Timeline.Points {
			if p.RunRequests == 0 {
				continue
			}
			fmt.Fprintf(&b, " %.0f%%", 100*p.HitRate)
		}
		fmt.Fprintln(&b)
	}
	if r.Verified > 0 {
		fmt.Fprintf(&b, "  verified   %d scenarios byte-identical to direct scenario.Run (%d mismatches)\n",
			r.Verified, r.Mismatches)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
