package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVettoolHotFactRoundTrip builds the real binary and runs it under
// `go vet -vettool` on a scratch module, proving that HotFacts gob-
// encoded into one package's .vetx payload survive into the analysis
// of an importing package compiled in a separate tool invocation: the
// only way the closure in beta becomes hot is through the sink fact
// exported while alpha was analyzed.
func TestVettoolHotFactRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet")
	}
	bin := filepath.Join(t.TempDir(), "platoonvet")
	build := exec.Command("go", "build", "-o", bin, "platoonsec/cmd/platoonvet")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building platoonvet: %v\n%s", err, out)
	}

	// A scratch module named platoonsec, so its internal/ packages fall
	// inside the suite's sim-critical scope.
	mod := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(mod, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module platoonsec\n\ngo 1.22\n")
	write("internal/alpha/alpha.go", `// Package alpha exports a callback sink.
package alpha

var handlers []func()

// OnEvent registers fn to run once per simulated event.
//
//platoonvet:hotpath sink -- fn runs per event
func OnEvent(fn func()) { handlers = append(handlers, fn) }
`)
	write("internal/beta/beta.go", `// Package beta registers an allocating callback with alpha's sink.
package beta

import "platoonsec/internal/alpha"

type event struct{ n int }

var last *event

func Install(n int) {
	alpha.OnEvent(func() {
		last = &event{n: n}
	})
}
`)

	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = mod
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet reported no diagnostics; want a cross-package hotalloc finding\n%s", out)
	}
	for _, want := range []string{
		// Only derivable from alpha's exported HotFact (Sink=true on
		// OnEvent), so it proves the vetx round trip.
		"hot path (registered with OnEvent): composite literal of event escapes (stored) and heap-allocates per event",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("go vet output missing %q\noutput:\n%s", want, out)
		}
	}
}
