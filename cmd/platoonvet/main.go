// Command platoonvet runs the platoon determinism and architecture
// lint suite (nowalltime, noglobalrand, maporder, noconcurrency,
// layering, units, errcheck — see internal/analysis) over Go packages.
//
// Standalone, against package patterns resolved by the go tool:
//
//	go run ./cmd/platoonvet ./...
//	go run ./cmd/platoonvet -json ./...   # machine-readable output
//	go run ./cmd/platoonvet -fix ./...    # apply suggested fixes
//	go run ./cmd/platoonvet -fix -diff ./...  # preview fixes as a diff
//	go run ./cmd/platoonvet -only taint,authgate ./...  # a subset
//
// or as a vet tool, one package at a time under the go command's
// caching and test-file handling:
//
//	go build -o "$(go env GOPATH)/bin/platoonvet" ./cmd/platoonvet
//	go vet -vettool="$(go env GOPATH)/bin/platoonvet" ./...
//
// In both modes analyzer facts (layering's dependency closures, units'
// declared dimensions) propagate across package boundaries: standalone
// analysis visits packages in dependency order sharing one fact store,
// and vet-tool mode round-trips the store through the .vetx files the
// go command passes between package units.
//
// Exit status: 0 clean, 1 operational error, 2 diagnostics reported
// (text mode; -json and -fix exit 0 unless an operational error
// occurs).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"sort"
	"strings"

	"platoonsec/internal/analysis"
	"platoonsec/internal/analysis/loader"
	"platoonsec/internal/analysis/suite"
)

func main() {
	vFlag := flag.String("V", "", "print version and exit (go vet protocol)")
	jsonFlag := flag.Bool("json", false, "emit diagnostics as JSON keyed by package path and analyzer")
	fixFlag := flag.Bool("fix", false, "apply the first suggested fix of each diagnostic")
	diffFlag := flag.Bool("diff", false, "with -fix, print a unified diff instead of rewriting files")
	onlyFlag := flag.String("only", "", "comma-separated analyzer names to run (standalone mode; default all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: platoonvet [-json] [-fix [-diff]] [-only names] [packages]\n       (or as go vet -vettool)\n\nAnalyzers:\n")
		for _, a := range suite.Analyzers {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
	}
	// Protocol probe: the go command asks a vet tool which flags it
	// supports before first use. The standalone flags are not exposed
	// through the vet protocol.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	flag.Parse()

	if *vFlag != "" {
		// The go command fingerprints vet tools for its action cache.
		fmt.Printf("platoonvet version devel buildID=%s\n", executableHash())
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}
	analyzers, err := selectAnalyzers(*onlyFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(standalone(args, analyzers, *jsonFlag, *fixFlag, *diffFlag))
}

// selectAnalyzers resolves -only against the suite. Analyzers whose
// facts feed a selected one still run implicitly via the shared fact
// store mechanics (each selected analyzer re-derives what it needs),
// so name-based selection is safe.
func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return suite.Analyzers, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(suite.Analyzers))
	for _, a := range suite.Analyzers {
		byName[a.Name] = a
	}
	var picked []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("platoonvet: unknown analyzer %q in -only (run with -h to list)", name)
		}
		picked = append(picked, a)
	}
	if len(picked) == 0 {
		return nil, fmt.Errorf("platoonvet: -only selected no analyzers")
	}
	return picked, nil
}

// pkgDiags pairs a package with its findings for output formatting.
type pkgDiags struct {
	path  string
	diags []analysis.Diagnostic
}

// standalone loads patterns itself and checks every matched package in
// dependency order, sharing one fact store so cross-package analyzers
// see their dependencies' exports.
func standalone(patterns []string, analyzers []*analysis.Analyzer, jsonOut, fix, diff bool) int {
	pkgs, fset, err := loader.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	store := analysis.NewFactStore()
	var results []pkgDiags
	for _, pkg := range pkgs {
		diags, err := analysis.RunPackage(fset, pkg.Files, pkg.Types, pkg.Info, analyzers, store)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if pkg.DepOnly {
			// Loaded only so its facts exist; it was not asked for, so
			// its diagnostics are not reported.
			continue
		}
		results = append(results, pkgDiags{path: pkg.Types.Path(), diags: diags})
	}
	if fix {
		return applyFixes(fset, results, diff)
	}
	if jsonOut {
		return printJSON(fset, results)
	}
	found := 0
	for _, r := range results {
		for _, d := range r.diags {
			found++
			fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "platoonvet: %d diagnostic(s)\n", found)
		return 2
	}
	return 0
}

// jsonDiagnostic mirrors the shape of golang.org/x/tools' vet JSON so
// existing tooling (and the CI problem matcher pipeline) can consume
// it.
type jsonDiagnostic struct {
	Posn           string    `json:"posn"`
	Message        string    `json:"message"`
	SuggestedFixes []jsonFix `json:"suggested_fixes,omitempty"`
}

type jsonFix struct {
	Message string     `json:"message"`
	Edits   []jsonEdit `json:"edits"`
}

type jsonEdit struct {
	Filename string `json:"filename"`
	Start    int    `json:"start"`
	End      int    `json:"end"`
	New      string `json:"new"`
}

// printJSON emits {pkgpath: {analyzer: [diagnostic...]}} on stdout.
// JSON map keys serialize sorted, so the output is deterministic. Like
// `go vet -json`, finding diagnostics is not an error exit.
func printJSON(fset *token.FileSet, results []pkgDiags) int {
	out := make(map[string]map[string][]jsonDiagnostic)
	for _, r := range results {
		if len(r.diags) == 0 {
			continue
		}
		byAnalyzer := make(map[string][]jsonDiagnostic)
		for _, d := range r.diags {
			jd := jsonDiagnostic{
				Posn:    fset.Position(d.Pos).String(),
				Message: d.Message,
			}
			for _, sf := range d.SuggestedFixes {
				jf := jsonFix{Message: sf.Message}
				for _, e := range sf.TextEdits {
					start := fset.Position(e.Pos)
					end := fset.Position(e.End)
					jf.Edits = append(jf.Edits, jsonEdit{
						Filename: start.Filename,
						Start:    start.Offset,
						End:      end.Offset,
						New:      string(e.NewText),
					})
				}
				jd.SuggestedFixes = append(jd.SuggestedFixes, jf)
			}
			byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jd)
		}
		out[r.path] = byAnalyzer
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "\t")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

// applyFixes resolves every diagnostic's first suggested fix and either
// rewrites the affected files in place or, with -diff, prints a unified
// diff of what would change.
func applyFixes(fset *token.FileSet, results []pkgDiags, diff bool) int {
	var all []analysis.Diagnostic
	for _, r := range results {
		all = append(all, r.diags...)
	}
	edits, conflicts := analysis.FileEdits(fset, all)
	for _, c := range conflicts {
		fmt.Fprintf(os.Stderr, "platoonvet: skipping conflicting fix: %s\n", c)
	}
	files := make([]string, 0, len(edits))
	for f := range edits {
		files = append(files, f)
	}
	sort.Strings(files)
	changed := 0
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fixed := analysis.ApplyEdits(src, edits[file])
		if string(fixed) == string(src) {
			continue
		}
		changed++
		if diff {
			fmt.Print(analysis.UnifiedDiff(file, src, fixed))
			continue
		}
		if err := os.WriteFile(file, fixed, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "platoonvet: fixed %s (%d edit(s))\n", file, len(edits[file]))
	}
	if diff && changed > 0 {
		return 2
	}
	return 0
}
