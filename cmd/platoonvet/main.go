// Command platoonvet runs the platoon determinism lint suite
// (nowalltime, noglobalrand, maporder, noconcurrency — see
// internal/analysis) over Go packages.
//
// Standalone, against package patterns resolved by the go tool:
//
//	go run ./cmd/platoonvet ./...
//
// or as a vet tool, one package at a time under the go command's
// caching and test-file handling:
//
//	go build -o "$(go env GOPATH)/bin/platoonvet" ./cmd/platoonvet
//	go vet -vettool="$(go env GOPATH)/bin/platoonvet" ./...
//
// Exit status: 0 clean, 1 operational error, 2 diagnostics reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"platoonsec/internal/analysis"
	"platoonsec/internal/analysis/loader"
	"platoonsec/internal/analysis/suite"
)

func main() {
	vFlag := flag.String("V", "", "print version and exit (go vet protocol)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: platoonvet [packages]\n       (or as go vet -vettool)\n\nAnalyzers:\n")
		for _, a := range suite.Analyzers {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
	}
	// Protocol probe: the go command asks a vet tool which flags it
	// supports before first use. This suite has none beyond the
	// protocol's own.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	flag.Parse()

	if *vFlag != "" {
		// The go command fingerprints vet tools for its action cache.
		fmt.Printf("platoonvet version devel buildID=%s\n", executableHash())
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}
	os.Exit(standalone(args))
}

// standalone loads patterns itself and checks every matched package.
func standalone(patterns []string) int {
	pkgs, fset, err := loader.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	found := 0
	for _, pkg := range pkgs {
		diags, err := analysis.RunPackage(fset, pkg.Files, pkg.Types, pkg.Info, suite.Analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		for _, d := range diags {
			found++
			fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "platoonvet: %d diagnostic(s)\n", found)
		return 2
	}
	return 0
}
