package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVettoolFactRoundTrip builds the real binary and runs it under
// `go vet -vettool` on a scratch module, proving that unit facts
// written to one package's .vetx payload survive into the analysis of
// an importing package compiled in a separate tool invocation.
func TestVettoolFactRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet")
	}
	bin := filepath.Join(t.TempDir(), "platoonvet")
	build := exec.Command("go", "build", "-o", bin, "platoonsec/cmd/platoonvet")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building platoonvet: %v\n%s", err, out)
	}

	// A scratch module named platoonsec, so its internal/ packages fall
	// inside the suite's sim-critical scope.
	mod := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(mod, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module platoonsec\n\ngo 1.22\n")
	write("internal/alpha/alpha.go", `// Package alpha declares tagged quantities.
package alpha

//platoonvet:unit m
var Gap = 2.0

// Brake is tagged so callers' arguments are checked.
//
//platoonvet:unit d=m
func Brake(d float64) float64 { return d * 0.5 }
`)
	write("internal/beta/beta.go", `// Package beta misuses alpha's units across the package boundary.
package beta

import "platoonsec/internal/alpha"

//platoonvet:unit s
var Wait = 1.5

func Use() {
	_ = alpha.Brake(Wait)
	_ = alpha.Gap + Wait
}
`)

	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = mod
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet reported no diagnostics; want cross-package units findings\n%s", out)
	}
	for _, want := range []string{
		// Both findings are only derivable from alpha's exported
		// UnitFacts, so they prove the vetx round trip.
		"argument has unit s, but parameter d of Brake is declared in m",
		"unit mismatch: m + s",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("go vet output missing %q\noutput:\n%s", want, out)
		}
	}
}
