// The go vet tool protocol: `go vet -vettool=platoonvet` invokes the
// tool once per package with a single argument, the path of a JSON
// config file describing the package's sources and the compiled export
// data of its dependencies. This file implements that protocol with
// the standard library, mirroring the contract of
// golang.org/x/tools/go/analysis/unitchecker: parse, type-check via
// the gc importer, run the suite, print findings to stderr, and write
// the .vetx output the go command expects.
//
// Facts flow between invocations through those .vetx files: the store
// is seeded from every dependency's PackageVetx payload before the
// suite runs, and the serialized output contains the package's own
// facts *plus* everything imported — the go command hands each unit
// only its direct imports' files, so transitive facts survive only by
// re-export, exactly as upstream unitchecker does.

package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"

	"platoonsec/internal/analysis"
	"platoonsec/internal/analysis/loader"
	"platoonsec/internal/analysis/suite"
)

// vetConfig is the JSON schema the go command writes for vet tools.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes the single package described by cfgFile and
// returns the process exit code.
func unitcheck(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "platoonvet: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// Seed the fact store from the dependencies' .vetx files, in
	// sorted order for determinism (later entries would win on
	// conflict, though identical facts are re-exported verbatim).
	store := analysis.NewFactStore()
	vetxPkgs := make([]string, 0, len(cfg.PackageVetx))
	for p := range cfg.PackageVetx {
		vetxPkgs = append(vetxPkgs, p)
	}
	sort.Strings(vetxPkgs)
	for _, p := range vetxPkgs {
		payload, err := os.ReadFile(cfg.PackageVetx[p])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := store.Decode(payload); err != nil {
			fmt.Fprintf(os.Stderr, "platoonvet: facts of %s: %v\n", p, err)
			return 1
		}
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{Importer: imp}
	info := loader.NewInfo()
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "platoonvet: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	// Even under VetxOnly (facts wanted, diagnostics not) the suite
	// must run: fact export happens during analysis.
	diags, err := analysis.RunPackage(fset, files, pkg, info, suite.Analyzers, store)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if cfg.VetxOutput != "" {
		payload, err := store.Encode()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := os.WriteFile(cfg.VetxOutput, payload, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// executableHash fingerprints this binary so the go command's action
// cache invalidates when the tool is rebuilt.
func executableHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	//platoonvet:allow errcheck -- the file is only read; a close failure cannot corrupt the hash already computed
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}
