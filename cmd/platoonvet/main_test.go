package main

import (
	"testing"

	"platoonsec/internal/analysis"
	"platoonsec/internal/analysis/loader"
	"platoonsec/internal/analysis/suite"
)

// TestRepositoryIsClean runs the full twelve-analyzer platoonvet suite
// over every package in the module and requires zero diagnostics. This
// is the determinism-and-architecture gate: a time.Now, global rand
// draw, unordered map emission, stray goroutine, layering breach, unit
// mismatch, swallowed error, unjustified hot-path allocation or
// dynamic dispatch, or unsanitized attacker-data flow anywhere in
// covered code fails the ordinary test run, not just CI lint.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go tool; skipped in -short mode")
	}
	pkgs, fset, err := loader.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; loader is missing the module", len(pkgs))
	}
	if len(suite.Analyzers) != 12 {
		t.Fatalf("suite has %d analyzers, want 12", len(suite.Analyzers))
	}
	store := analysis.NewFactStore()
	for _, pkg := range pkgs {
		diags, err := analysis.RunPackage(fset, pkg.Files, pkg.Types, pkg.Info, suite.Analyzers, store)
		if err != nil {
			t.Fatalf("%s: %v", pkg.Path, err)
		}
		if pkg.DepOnly {
			continue
		}
		for _, d := range diags {
			t.Errorf("%s: %s [%s]", fset.Position(d.Pos), d.Message, d.Analyzer)
		}
	}
	if store.Len() == 0 {
		t.Error("fact store is empty after a whole-module run; layering/units facts are not being exported")
	}
}
