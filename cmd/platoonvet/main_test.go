package main

import (
	"testing"

	"platoonsec/internal/analysis"
	"platoonsec/internal/analysis/loader"
	"platoonsec/internal/analysis/suite"
)

// TestRepositoryIsClean runs the full platoonvet suite over every
// package in the module and requires zero diagnostics. This is the
// determinism gate: a time.Now, global rand draw, unordered map
// emission, or stray goroutine anywhere in sim-critical code fails the
// ordinary test run, not just CI lint.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go tool; skipped in -short mode")
	}
	pkgs, fset, err := loader.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; loader is missing the module", len(pkgs))
	}
	for _, pkg := range pkgs {
		diags, err := analysis.RunPackage(fset, pkg.Files, pkg.Types, pkg.Info, suite.Analyzers)
		if err != nil {
			t.Fatalf("%s: %v", pkg.Path, err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s [%s]", fset.Position(d.Pos), d.Message, d.Analyzer)
		}
	}
}
