package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVettoolTaintFactRoundTrip builds the real binary and runs it
// under `go vet -vettool` on a scratch module, proving that TaintFacts
// and SanitizerFacts gob-encoded into one package's .vetx payload
// survive into the analysis of an importing package compiled in a
// separate tool invocation: beta's source, sanitizer, and sink are all
// declared in alpha, so the one finding (and the one silence) are only
// derivable from imported facts.
func TestVettoolTaintFactRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet")
	}
	bin := filepath.Join(t.TempDir(), "platoonvet")
	build := exec.Command("go", "build", "-o", bin, "platoonsec/cmd/platoonvet")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building platoonvet: %v\n%s", err, out)
	}

	mod := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(mod, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module platoonsec\n\ngo 1.22\n")
	write("internal/alpha/alpha.go", `// Package alpha declares a trust boundary.
package alpha

// Inject produces attacker-controlled bytes.
//
//platoonvet:taint-source -- scratch injector
func Inject() []byte { return nil }

// Vet verifies a wire image.
//
//platoonvet:sanitizer -- scratch verification gate
func Vet(b []byte) {}

// Actuate consumes a control quantity.
//
//platoonvet:trusted-sink -- scratch actuator
func Actuate(x byte) {}
`)
	write("internal/beta/beta.go", `// Package beta flows alpha's taint across the package boundary.
package beta

import "platoonsec/internal/alpha"

// Bad actuates unverified attacker data.
func Bad() {
	wire := alpha.Inject()
	alpha.Actuate(wire[0])
}

// Good verifies first.
func Good() {
	wire := alpha.Inject()
	alpha.Vet(wire)
	alpha.Actuate(wire[0])
}
`)

	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = mod
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet reported no diagnostics; want a cross-package taint finding\n%s", out)
	}
	text := string(out)
	// Only derivable from alpha's exported TaintFacts, so it proves
	// the vetx round trip.
	want := "tainted value reaches trusted sink Actuate"
	if !strings.Contains(text, want) {
		t.Errorf("go vet output missing %q\noutput:\n%s", want, out)
	}
	if n := strings.Count(text, "trusted sink Actuate"); n != 1 {
		t.Errorf("want exactly 1 taint finding (Good is sanitized by the imported SanitizerFact), got %d:\n%s", n, out)
	}
}
