package main

// Relative-link checker shared by the -check-links flag and the test
// suite: every markdown link whose target is a local path must point
// at a file that exists, so the generated reference (and the hand-
// written docs that link into it) cannot silently rot.

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// linkRe matches the target of inline markdown links and images:
// [text](target) / ![alt](target).
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkMarkdownLinks scans the given files (directories are walked for
// *.md) and returns one human-readable line per broken relative link.
// Absolute URLs (scheme://, mailto:) and pure in-page anchors are
// skipped; fragments on relative links are stripped before the target
// is checked for existence.
func checkMarkdownLinks(paths []string) ([]string, error) {
	files, err := markdownFiles(paths)
	if err != nil {
		return nil, err
	}
	var broken []string
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if skipLink(target) {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				broken = append(broken, fmt.Sprintf("%s: broken link %q", file, m[1]))
			}
		}
	}
	return broken, nil
}

// skipLink reports whether a link target is out of scope for the
// filesystem check.
func skipLink(target string) bool {
	return strings.Contains(target, "://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#")
}

// markdownFiles expands the path list: files are taken as-is,
// directories are walked for *.md. The result is sorted so diagnostics
// are stable.
func markdownFiles(paths []string) ([]string, error) {
	var files []string
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			files = append(files, p)
			continue
		}
		err = filepath.WalkDir(p, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(files)
	return files, nil
}
