//go:build !race

package main

// raceEnabled lets tests skip workloads that are impractically slow
// under the race detector.
const raceEnabled = false
