package main

// The HTTP API reference under docs/api/ is generated from the
// platoond route table (internal/service.Routes) — the same static
// data the server registers its handlers from, and which a service
// test pins against the mux — so the committed reference cannot drift
// from what the daemon actually serves.

import (
	"fmt"
	"strings"

	"platoonsec/internal/service"
)

// routeSlug is the per-endpoint page name: "GET /v1/runs/{digest}" →
// "get-v1-runs-digest.md".
func routeSlug(rt service.Route) string {
	p := strings.NewReplacer("/", "-", "{", "", "}", "").Replace(strings.Trim(rt.Path, "/"))
	return strings.ToLower(rt.Method) + "-" + p + ".md"
}

// apiPages renders the platoond HTTP API reference, keyed by path
// relative to the docs root. Purely a function of the route table: no
// simulation runs.
func apiPages() map[string][]byte {
	routes := service.Routes()
	pages := make(map[string][]byte, len(routes)+1)
	pages["api/README.md"] = apiIndexPage(routes)
	for _, rt := range routes {
		pages["api/"+routeSlug(rt)] = apiRoutePage(rt)
	}
	return pages
}

func apiIndexPage(routes []service.Route) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "# platoond HTTP API\n\n")
	fmt.Fprintf(&b, "%s\n\n", genNote)
	fmt.Fprintf(&b, "`platoond` (see `cmd/platoond`) serves deterministic platoon-security\n")
	fmt.Fprintf(&b, "simulations over HTTP/JSON. Every run is a pure function of the\n")
	fmt.Fprintf(&b, "normalized request, its seed, and the schema version; the server\n")
	fmt.Fprintf(&b, "computes the canonical SHA-256 digest of that triple and serves\n")
	fmt.Fprintf(&b, "repeated requests from a content-addressed cache — concurrent\n")
	fmt.Fprintf(&b, "identical requests coalesce onto a single simulation, and every\n")
	fmt.Fprintf(&b, "response carries the same bytes a direct library call would produce.\n\n")
	fmt.Fprintf(&b, "Start it and run an experiment:\n\n")
	fmt.Fprintf(&b, "```sh\n")
	fmt.Fprintf(&b, "go run ./cmd/platoond -addr :8099\n")
	fmt.Fprintf(&b, "curl -s localhost:8099/v1/runs -d '{\"attack\": \"jamming\"}'\n")
	fmt.Fprintf(&b, "```\n\n")

	fmt.Fprintf(&b, "## Endpoints\n\n")
	fmt.Fprintf(&b, "| Endpoint | Summary |\n")
	fmt.Fprintf(&b, "|---|---|\n")
	for _, rt := range routes {
		fmt.Fprintf(&b, "| [`%s %s`](%s) | %s |\n", rt.Method, rt.Path, routeSlug(rt), rt.Summary)
	}

	fmt.Fprintf(&b, "\n## Conventions\n\n")
	fmt.Fprintf(&b, "- **Digests.** A request's digest is the hex SHA-256 of its canonical\n")
	fmt.Fprintf(&b, "  JSON after normalization (defaults filled, defense list sorted and\n")
	fmt.Fprintf(&b, "  deduplicated, inapplicable knobs rejected), with the schema version\n")
	fmt.Fprintf(&b, "  baked in. Two requests describe the same experiment if and only if\n")
	fmt.Fprintf(&b, "  their digests are equal. `POST /v1/digest` dry-runs the computation.\n")
	fmt.Fprintf(&b, "- **Caching.** Results are immutable once computed; the\n")
	fmt.Fprintf(&b, "  `X-Platoond-Cache` header reports how each response was produced\n")
	fmt.Fprintf(&b, "  (`miss`, `hit`, `spill`, `dedup`).\n")
	fmt.Fprintf(&b, "- **Tenancy.** The `X-Platoond-Tenant` request header names the quota\n")
	fmt.Fprintf(&b, "  bucket; absent, requests share the `anonymous` bucket.\n")
	fmt.Fprintf(&b, "- **Errors.** Error bodies are `{\"error\": ..., \"code\": ...}`; 429\n")
	fmt.Fprintf(&b, "  responses carry a `Retry-After` header in seconds.\n")
	fmt.Fprintf(&b, "\n[Back to the reference index](../README.md)\n")
	return []byte(b.String())
}

func apiRoutePage(rt service.Route) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s %s\n\n", rt.Method, rt.Path)
	fmt.Fprintf(&b, "%s\n\n", genNote)
	fmt.Fprintf(&b, "**%s.**\n\n", rt.Summary)
	fmt.Fprintf(&b, "%s\n\n", rt.Description)
	if rt.RequestExample != "" {
		fmt.Fprintf(&b, "## Request\n\n```json\n%s\n```\n\n", rt.RequestExample)
	}
	if rt.ResponseExample != "" {
		fmt.Fprintf(&b, "## Response (`%s`)\n\n", rt.ResponseType)
		fmt.Fprintf(&b, "```\n%s\n```\n\n", rt.ResponseExample)
	}
	if len(rt.Headers) > 0 {
		fmt.Fprintf(&b, "## Response headers\n\n")
		fmt.Fprintf(&b, "| Header | Meaning |\n|---|---|\n")
		for _, h := range rt.Headers {
			fmt.Fprintf(&b, "| `%s` | %s |\n", h.Name, h.Meaning)
		}
		fmt.Fprintf(&b, "\n")
	}
	if len(rt.Errors) > 0 {
		fmt.Fprintf(&b, "## Errors\n\n")
		fmt.Fprintf(&b, "| Status | Code | When |\n|---|---|---|\n")
		for _, e := range rt.Errors {
			fmt.Fprintf(&b, "| %d | `%s` | %s |\n", e.Status, e.Code, e.When)
		}
		fmt.Fprintf(&b, "\n")
	}
	fmt.Fprintf(&b, "[Back to the API index](README.md)\n")
	return []byte(b.String())
}
