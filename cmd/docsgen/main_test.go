package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-notaflag"}, io.Discard); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestCheckLinksNeedsArgs(t *testing.T) {
	if err := run([]string{"-check-links"}, io.Discard); err == nil {
		t.Fatal("-check-links with no paths accepted")
	}
}

func TestLinkCheckerFindsBrokenLinks(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.md")
	bad := filepath.Join(dir, "bad.md")
	if err := os.WriteFile(good, []byte("[ok](bad.md) [web](https://example.com) [anchor](#x)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bad, []byte("[gone](missing.md) [frag](missing.md#sec)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	broken, err := checkMarkdownLinks([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 2 {
		t.Fatalf("broken = %v, want 2 findings in bad.md", broken)
	}
	for _, b := range broken {
		if !strings.Contains(b, "bad.md") || !strings.Contains(b, "missing.md") {
			t.Errorf("finding %q does not name the broken file and target", b)
		}
	}
	if err := run([]string{"-check-links", dir}, io.Discard); err == nil {
		t.Fatal("-check-links over a tree with broken links returned nil error")
	}
	if err := run([]string{"-check-links", good}, io.Discard); err != nil {
		t.Fatalf("-check-links over a clean file: %v", err)
	}
}
