// Command attacklab sweeps the full attack × defense-mechanism matrix —
// including pairings the paper does NOT claim — and prints a grid
// comparing measured mitigation against the paper's Table III claims.
//
//	attacklab [-quick] [-seed N] [-attack KEY] [-mech KEY] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"platoonsec/internal/lab"
	"platoonsec/internal/sim"
	"platoonsec/internal/taxonomy"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "attacklab:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("attacklab", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "shorter runs")
	seed := fs.Int64("seed", 1, "random seed")
	onlyAttack := fs.String("attack", "", "restrict to one attack key")
	onlyMech := fs.String("mech", "", "restrict to one mechanism key")
	verbose := fs.Bool("v", false, "print per-cell details")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := lab.DefaultConfig()
	cfg.Seed = *seed
	if *quick {
		cfg.Duration = 40 * sim.Second
		cfg.Vehicles = 6
	}

	attacks := taxonomy.Attacks()
	mechs := taxonomy.Mechanisms()

	fmt.Printf("%-18s", "attack \\ mech")
	for _, m := range mechs {
		fmt.Printf(" %-20s", m.Key)
	}
	fmt.Println()

	agree, total := 0, 0
	for _, a := range attacks {
		if *onlyAttack != "" && a.Key != *onlyAttack {
			continue
		}
		fmt.Printf("%-18s", a.Key)
		for _, m := range mechs {
			if *onlyMech != "" && m.Key != *onlyMech {
				fmt.Printf(" %-20s", "-")
				continue
			}
			cell, err := lab.MeasureCell(cfg, a.Key, m.Key)
			if err != nil {
				return err
			}
			mark := cellMark(cell)
			fmt.Printf(" %-20s", mark)
			total++
			if cell.Mitigated == cell.Claimed {
				agree++
			}
			if *verbose {
				fmt.Fprintf(os.Stderr, "  %s × %s: claimed=%v measured=%v — %s\n",
					a.Key, m.Key, cell.Claimed, cell.Mitigated, cell.Note)
			}
		}
		fmt.Println()
	}
	fmt.Printf("\nagreement with paper's Table III claims: %d/%d cells\n", agree, total)
	fmt.Println("legend: ✓✓ claimed & mitigated   ·· unclaimed & not mitigated")
	fmt.Println("        ✗C claimed but NOT mitigated   +U mitigated beyond claim")
	return nil
}

func cellMark(c *lab.Cell) string {
	switch {
	case c.Claimed && c.Mitigated:
		return "✓✓"
	case c.Claimed && !c.Mitigated:
		return "✗C " + c.Note
	case !c.Claimed && c.Mitigated:
		return "+U"
	default:
		return "··"
	}
}
