// Command attacklab sweeps the full attack × defense-mechanism matrix —
// including pairings the paper does NOT claim — and prints a grid
// comparing measured mitigation against the paper's Table III claims.
// Cells are measured in parallel on the experiment engine; the grid is
// identical for any worker count because each cell is a deterministic
// pair of runs and emission is index-ordered.
//
//	attacklab [-quick] [-seed N] [-attack KEY] [-mech KEY] [-v]
//	          [-workers N] [-jsonl FILE] [-stats] [-obs]
//	          [-forensics FILE] [-cpuprofile FILE] [-memprofile FILE]
//
//	-workers N       parallel cell workers (0 = GOMAXPROCS)
//	-jsonl FILE      stream per-cell results as JSON lines to FILE
//	-stats           print engine telemetry (runs/sec, p50/p95) to stderr
//	-obs             attach the flight recorder to every run and print
//	                 the aggregated observability counters to stderr
//	-forensics FILE  attach the causal span tracer to every run and
//	                 write the per-cell attack→effect attribution
//	                 reports (undefended and defended) as JSON to FILE;
//	                 the document is byte-identical at any worker count
//	-cpuprofile FILE write a pprof CPU profile of the sweep
//	-memprofile FILE write a pprof heap profile after the sweep
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"platoonsec/internal/engine"
	"platoonsec/internal/lab"
	"platoonsec/internal/obs/span"
	"platoonsec/internal/scenario"
	"platoonsec/internal/sim"
	"platoonsec/internal/taxonomy"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "attacklab:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("attacklab", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "shorter runs")
	seed := fs.Int64("seed", 1, "random seed")
	onlyAttack := fs.String("attack", "", "restrict to one attack key")
	onlyMech := fs.String("mech", "", "restrict to one mechanism key")
	verbose := fs.Bool("v", false, "print per-cell details")
	workers := fs.Int("workers", 0, "parallel cell workers (0 = GOMAXPROCS)")
	jsonlFile := fs.String("jsonl", "", "stream per-cell results as JSON lines to FILE")
	stats := fs.Bool("stats", false, "print engine telemetry to stderr")
	obsOn := fs.Bool("obs", false, "attach the flight recorder and print aggregated counters to stderr")
	forensicsFile := fs.String("forensics", "", "write per-cell attack→effect attribution reports as JSON to FILE")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile to FILE")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile to FILE")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := lab.DefaultConfig()
	cfg.Seed = *seed
	cfg.Observe = *obsOn
	cfg.Spans = *forensicsFile != ""
	if *quick {
		cfg.Duration = 40 * sim.Second
		cfg.Vehicles = 6
	}

	if *cpuprofile != "" || *memprofile != "" {
		stop, perr := engine.StartProfiles(*cpuprofile, *memprofile)
		if perr != nil {
			return perr
		}
		defer func() {
			if serr := stop(); serr != nil && err == nil {
				err = serr
			}
		}()
	}

	attacks := taxonomy.Attacks()
	mechs := taxonomy.Mechanisms()

	// The measured cells, row-major over the filtered grid.
	var pairs []pair
	for _, a := range attacks {
		if *onlyAttack != "" && a.Key != *onlyAttack {
			continue
		}
		for _, m := range mechs {
			if *onlyMech != "" && m.Key != *onlyMech {
				continue
			}
			pairs = append(pairs, pair{a.Key, m.Key})
		}
	}
	jobs := make([]engine.Job[*lab.Cell], len(pairs))
	for i := range pairs {
		p := pairs[i]
		jobs[i] = func(context.Context) (*lab.Cell, error) {
			return lab.MeasureCell(cfg, p.attack, p.mech)
		}
	}
	ecfg := engine.Config[*lab.Cell]{
		Workers: *workers,
		Policy:  engine.FailFast,
		EventsOf: func(c *lab.Cell) uint64 {
			return c.Undefended.EventsFired + c.Defended.EventsFired
		},
		CountersOf: func(c *lab.Cell) map[string]uint64 {
			// Pure reduction: sum the cell's two runs.
			merged := make(map[string]uint64)
			for _, r := range []*scenario.Result{c.Undefended, c.Defended} {
				if r.Obs == nil {
					continue
				}
				for name, v := range r.Obs.Counters {
					merged[name] += v
				}
			}
			return merged
		},
	}
	if *jsonlFile != "" {
		f, ferr := os.Create(*jsonlFile)
		if ferr != nil {
			return fmt.Errorf("jsonl file: %w", ferr)
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("jsonl file: %w", cerr)
			}
		}()
		ecfg.Results = f
	}

	rep := engine.Sweep(context.Background(), jobs, ecfg)
	if rep.Err != nil {
		p := pairs[rep.ErrIndex]
		return fmt.Errorf("%s × %s: %w", p.attack, p.mech, rep.Err)
	}
	if rep.SinkErr != nil {
		return rep.SinkErr
	}
	cells := make(map[pair]*lab.Cell, len(pairs))
	for i, c := range rep.Results {
		cells[pairs[i]] = c
	}

	fmt.Printf("%-18s", "attack \\ mech")
	for _, m := range mechs {
		fmt.Printf(" %-20s", m.Key)
	}
	fmt.Println()

	agree, total := 0, 0
	for _, a := range attacks {
		if *onlyAttack != "" && a.Key != *onlyAttack {
			continue
		}
		fmt.Printf("%-18s", a.Key)
		for _, m := range mechs {
			cell, ok := cells[pair{a.Key, m.Key}]
			if !ok {
				fmt.Printf(" %-20s", "-")
				continue
			}
			fmt.Printf(" %-20s", cellMark(cell))
			total++
			if cell.Mitigated == cell.Claimed {
				agree++
			}
			if *verbose {
				fmt.Fprintf(os.Stderr, "  %s × %s: claimed=%v measured=%v — %s\n",
					a.Key, m.Key, cell.Claimed, cell.Mitigated, cell.Note)
			}
		}
		fmt.Println()
	}
	fmt.Printf("\nagreement with paper's Table III claims: %d/%d cells\n", agree, total)
	fmt.Println("legend: ✓✓ claimed & mitigated   ·· unclaimed & not mitigated")
	fmt.Println("        ✗C claimed but NOT mitigated   +U mitigated beyond claim")
	if *forensicsFile != "" {
		if werr := writeForensics(*forensicsFile, pairs, rep.Results); werr != nil {
			return werr
		}
	}
	if *stats {
		fmt.Fprintln(os.Stderr, "engine:", rep.Telemetry.String())
	}
	if *obsOn && len(rep.Telemetry.Counters) > 0 {
		fmt.Fprintln(os.Stderr, "obs counters (all cells):")
		names := make([]string, 0, len(rep.Telemetry.Counters))
		for name := range rep.Telemetry.Counters {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(os.Stderr, "  %-22s %d\n", name, rep.Telemetry.Counters[name])
		}
	}
	return nil
}

// pair addresses one (attack, mechanism) grid cell.
type pair struct{ attack, mech string }

// writeForensics dumps every cell's causal attribution reports as one
// JSON document, in grid (row-major) order. Each run is deterministic
// and emission order is fixed, so the bytes are identical at any
// worker count — the file is CI-artifact material.
func writeForensics(path string, pairs []pair, cells []*lab.Cell) (err error) {
	type cellForensics struct {
		Attack     string          `json:"attack"`
		Mechanism  string          `json:"mechanism"`
		Undefended *span.Forensics `json:"undefended,omitempty"`
		Defended   *span.Forensics `json:"defended,omitempty"`
	}
	doc := make([]cellForensics, len(pairs))
	for i, p := range pairs {
		doc[i] = cellForensics{
			Attack:     p.attack,
			Mechanism:  p.mech,
			Undefended: cells[i].Undefended.Forensics,
			Defended:   cells[i].Defended.Forensics,
		}
	}
	f, ferr := os.Create(path)
	if ferr != nil {
		return fmt.Errorf("forensics file: %w", ferr)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("forensics file: %w", cerr)
		}
	}()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func cellMark(c *lab.Cell) string {
	switch {
	case c.Claimed && c.Mitigated:
		return "✓✓"
	case c.Claimed && !c.Mitigated:
		return "✗C " + c.Note
	case !c.Claimed && c.Mitigated:
		return "+U"
	default:
		return "··"
	}
}
