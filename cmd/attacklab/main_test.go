package main

import "testing"

func TestRunSingleCell(t *testing.T) {
	// One quick cell keeps the test fast while exercising the grid
	// printer end to end.
	err := run([]string{"-quick", "-attack", "jamming", "-mech", "hybrid-comms"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-notaflag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
