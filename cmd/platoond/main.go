// Command platoond serves deterministic platoon-security simulations
// over HTTP/JSON with digest-keyed result caching.
//
// Every run is a pure function of (normalized request, seed, schema
// version); the server computes the canonical SHA-256 digest of that
// triple and answers repeats from a content-addressed cache — an
// in-memory LRU with single-flight deduplication, optionally spilling
// evicted artifacts to disk — so N identical requests cost exactly one
// simulation and everyone receives byte-identical results. Admission
// control (bounded in-flight pool, bounded wait queue, per-tenant
// token-bucket quotas) protects the process; /metrics exposes the
// cache, queue and latency telemetry.
//
// Usage:
//
//	platoond [flags]
//
//	-addr HOST:PORT  listen address (default 127.0.0.1:8099)
//	-cache-entries N in-memory cache entry bound (default 512)
//	-cache-mb N      in-memory cache byte bound in MiB (default 256)
//	-spill DIR       spill evicted artifacts to DIR and consult it on
//	                 misses (default: disabled)
//	-inflight N      concurrently executing simulations (default 4)
//	-queue N         requests allowed to wait for a slot before 429
//	                 saturated (default 64)
//	-quota-rate R    per-tenant requests/sec refill (0 = quotas off)
//	-quota-burst B   per-tenant bucket size (default 2*rate, min 1)
//	-world-shards N  spatial kernel shards for world runs (default 1;
//	                 execution knob, never part of the digest)
//	-world-workers N parallel shard workers for world runs (default 1)
//	-timeline-interval D  metrics timeline sampling period (default 10s;
//	                 0 disables GET /v1/timeline)
//	-timeline-capacity N  timeline ring capacity in samples (default 720)
//	-traces N        request-trace ring capacity (default 256; 0
//	                 disables GET /v1/traces)
//	-trace-sample N  keep every Nth run request's trace (default 1)
//	-pprof           expose GET /debug/pprof/{profile} (off by default)
//	-slo-latency-ms F request-latency objective /v1/slo reports
//	                 attainment against (default 250)
//
// Examples:
//
//	platoond -addr :8099
//	platoond -spill /var/cache/platoond -quota-rate 50
//	platoond -timeline-interval 5s -traces 512 -pprof
//	curl -s localhost:8099/v1/runs -d '{"attack":"jamming"}'
//	curl -s localhost:8099/v1/slo
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"platoonsec/internal/service"
)

func main() {
	if err := run(os.Args[1:], nil); err != nil {
		fmt.Fprintln(os.Stderr, "platoond:", err)
		os.Exit(1)
	}
}

// run starts the server and blocks until SIGINT/SIGTERM. When ready is
// non-nil it receives the bound listen address once the socket is open
// (tests use it to serve on port 0).
func run(args []string, ready chan<- string) error {
	fs := flag.NewFlagSet("platoond", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8099", "listen address")
	cacheEntries := fs.Int("cache-entries", 512, "in-memory cache entry bound")
	cacheMB := fs.Int64("cache-mb", 256, "in-memory cache byte bound, MiB")
	spill := fs.String("spill", "", "disk spill directory (empty = disabled)")
	inflight := fs.Int("inflight", 4, "concurrently executing simulations")
	queue := fs.Int("queue", 64, "bounded wait queue before 429 saturated")
	quotaRate := fs.Float64("quota-rate", 0, "per-tenant requests/sec (0 = quotas off)")
	quotaBurst := fs.Float64("quota-burst", 0, "per-tenant bucket size (0 = 2*rate)")
	worldShards := fs.Int("world-shards", 1, "spatial kernel shards for world runs")
	worldWorkers := fs.Int("world-workers", 1, "parallel shard workers for world runs")
	tlInterval := fs.Duration("timeline-interval", 10*time.Second, "metrics timeline sampling period (0 = disabled)")
	tlCapacity := fs.Int("timeline-capacity", 0, "timeline ring capacity in samples (0 = default 720)")
	traces := fs.Int("traces", 256, "request-trace ring capacity (0 = disabled)")
	traceSample := fs.Int("trace-sample", 1, "keep every Nth run request's trace")
	pprofOn := fs.Bool("pprof", false, "expose GET /debug/pprof/{profile}")
	sloLatencyMS := fs.Float64("slo-latency-ms", 250, "request-latency objective for /v1/slo, ms")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The flag surface uses 0 for "off"; the library uses negatives
	// (0 picks its defaults).
	if *tlInterval == 0 {
		*tlInterval = -1
	}
	if *traces == 0 {
		*traces = -1
	}
	srv, err := service.NewServer(service.Config{
		Now:                   time.Now,
		CacheEntries:          *cacheEntries,
		CacheBytes:            *cacheMB << 20,
		SpillDir:              *spill,
		MaxInflight:           *inflight,
		MaxQueue:              *queue,
		QuotaRate:             *quotaRate,
		QuotaBurst:            *quotaBurst,
		WorldShards:           *worldShards,
		WorldWorkers:          *worldWorkers,
		TimelineInterval:      *tlInterval,
		TimelineCapacity:      *tlCapacity,
		TraceCapacity:         *traces,
		TraceSample:           *traceSample,
		Pprof:                 *pprofOn,
		SLOLatencyObjectiveMS: *sloLatencyMS,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Fprintln(os.Stderr, "platoond: serving on", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	// Serve until a termination signal, then drain in-flight requests.
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Fprintln(os.Stderr, "platoond: shutting down on", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
