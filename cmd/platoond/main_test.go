package main

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeRunShutdown boots the daemon on an ephemeral port, runs one
// experiment twice (miss then hit), and shuts it down with SIGTERM.
func TestServeRunShutdown(t *testing.T) {
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-spill", t.TempDir()}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	body := `{"seed": 3, "duration_sec": 5, "attack": "replay"}`
	var first []byte
	for i, want := range []string{"miss", "hit"} {
		resp, err := http.Post(base+"/v1/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		b, err := io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			t.Fatalf("request %d read: %v", i, err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, b)
		}
		if got := resp.Header.Get("X-Platoond-Cache"); got != want {
			t.Errorf("request %d: X-Platoond-Cache = %q, want %q", i, got, want)
		}
		if !json.Valid(b) {
			t.Fatalf("request %d: body is not JSON: %.80s", i, b)
		}
		if i == 0 {
			first = b
		} else if string(b) != string(first) {
			t.Errorf("cache hit served different bytes than the miss")
		}
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	//platoonvet:allow errcheck -- test teardown of a read-only response
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("sending SIGTERM: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(35 * time.Second):
		t.Fatal("server never shut down after SIGTERM")
	}
}

// TestBadFlag rejects unknown flags.
func TestBadFlag(t *testing.T) {
	if err := run([]string{"-no-such-flag"}, nil); err == nil {
		t.Fatal("expected a flag error")
	}
}
