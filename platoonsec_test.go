package platoonsec_test

import (
	"testing"

	"platoonsec"
)

func TestFacadeRun(t *testing.T) {
	o := platoonsec.DefaultOptions()
	o.Duration = 20 * platoonsec.Second
	o.Vehicles = 4
	r, err := platoonsec.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Collisions != 0 || r.MaxSpacingErr > 2.5 {
		t.Fatalf("facade baseline unhealthy: %+v", r)
	}
}

func TestFacadeRegistries(t *testing.T) {
	if len(platoonsec.Attacks()) != 9 {
		t.Fatal("attack registry size")
	}
	if len(platoonsec.Mechanisms()) != 5 {
		t.Fatal("mechanism registry size")
	}
	if len(platoonsec.Surveys()) != 8 {
		t.Fatal("survey registry size")
	}
}

func TestFacadeDefensePacks(t *testing.T) {
	for _, m := range platoonsec.Mechanisms() {
		pack, err := platoonsec.PackForMechanism(m.Key)
		if err != nil {
			t.Fatalf("no pack for %s: %v", m.Key, err)
		}
		if !pack.Any() {
			t.Fatalf("empty pack for %s", m.Key)
		}
	}
	if !platoonsec.AllDefenses().Any() {
		t.Fatal("AllDefenses empty")
	}
}

func TestFacadeRiskMatrix(t *testing.T) {
	m := platoonsec.RiskMatrix(map[string]*platoonsec.RiskEvidence{
		"jamming": {DisbandedFrac: 1},
	})
	if len(m) != 9 {
		t.Fatalf("matrix rows = %d", len(m))
	}
	if platoonsec.RenderRiskMatrix(m) == "" {
		t.Fatal("empty render")
	}
}
