// Replay attack demo (§V-A1 of the paper): an attacker records platoon
// beacons while the leader cruises slowly, then re-injects them after
// the leader speeds up. Members receive conflicting state and the
// platoon oscillates. The same run with the keys defense (signatures +
// timestamps, §VI-A1) shows the replayed frames being rejected for
// staleness.
package main

import (
	"fmt"
	"log"

	"platoonsec"
)

func run(defense platoonsec.DefensePack, attack string) *platoonsec.Result {
	opts := platoonsec.DefaultOptions()
	opts.Seed = 7
	opts.Duration = 60 * platoonsec.Second
	opts.Vehicles = 8
	opts.AttackKey = attack
	opts.Defense = defense
	res, err := platoonsec.Run(opts)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	baseline := run(platoonsec.DefensePack{}, "")
	attacked := run(platoonsec.DefensePack{}, "replay")
	keys, err := platoonsec.PackForMechanism("keys")
	if err != nil {
		log.Fatal(err)
	}
	defended := run(keys, "replay")

	fmt.Println("=== replay attack: spacing-error oscillation ===")
	fmt.Printf("%-28s max spacing error %6.2f m\n", "baseline (no attack):", baseline.MaxSpacingErr)
	fmt.Printf("%-28s max spacing error %6.2f m  (×%.1f)\n", "replay, open platoon:",
		attacked.MaxSpacingErr, attacked.MaxSpacingErr/baseline.MaxSpacingErr)
	fmt.Printf("%-28s max spacing error %6.2f m  (%d stale frames rejected)\n",
		"replay, signed+timestamped:", defended.MaxSpacingErr, defended.VerifyDrops+defended.DecryptFailures)

	fmt.Println("\nThe paper's claim (§V-A1): \"by replaying the old message, the attacker")
	fmt.Println("will make the platoon oscillate\" — and (§VI-A1) that signatures with")
	fmt.Println("timestamps prevent it. Both reproduce above.")
}
