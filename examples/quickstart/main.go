// Quickstart: run a healthy 8-truck platoon for a minute and read the
// report. This is the 30-second tour of the public API: options in,
// measured result out.
package main

import (
	"fmt"
	"log"

	"platoonsec"
)

func main() {
	opts := platoonsec.DefaultOptions()
	opts.Seed = 42
	opts.Duration = 60 * platoonsec.Second
	opts.Vehicles = 8

	res, err := platoonsec.Run(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== baseline platoon, no attack, no defenses ===")
	fmt.Print(res.String())

	fmt.Println("\nWhat to notice:")
	fmt.Printf("  • spacing holds within %.2f m of the 8 m CACC target\n", res.MaxSpacingErr)
	fmt.Printf("  • the platoon burned %.1f L over %.1f km (%.1f L/100km per truck);\n",
		res.FuelLitres, res.DistanceKm, res.LitresPer100)
	fmt.Println("    drafting at 8 m is where the paper's fuel-saving motivation comes from")
	fmt.Printf("  • the roadside observer decoded %.0f%% of frames and tracked %d vehicles —\n",
		res.EavesdropYield*100, res.EavesdropTracks)
	fmt.Println("    an OPEN platoon leaks everything (§V-C); try Defense.Encrypt to fix it")
}
