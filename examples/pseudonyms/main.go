// Pseudonym privacy demo (§VI-B2 open challenge): three trucks drive
// abreast while a roadside tracker reconstructs their journeys from
// beacons. Without pseudonym rotation every journey is one unbroken
// track; with rotation plus silent mix windows the tracker's stitched
// chains fall apart. This example drives internal mechanisms through a
// small self-contained world rather than the scenario runner, showing
// the lower-level APIs.
package main

import (
	"fmt"
	"log"

	"platoonsec/internal/attack"
	"platoonsec/internal/mac"
	"platoonsec/internal/phy"
	"platoonsec/internal/privacy"
	"platoonsec/internal/sim"
	"platoonsec/internal/vehicle"
)

func run(vehicles int, rotate, silent sim.Time) (tracks int, linkability float64) {
	k := sim.NewKernel(5)
	env := phy.DefaultEnvironment()
	env.RayleighFading = false
	env.ShadowSigmaDB = 0
	bus := mac.NewBus(k, phy.NewChannel(env, k.Stream("phy")), mac.DefaultConfig())

	var anchor *vehicle.Vehicle
	radio := attack.NewRadio(k, bus, 900, func() float64 {
		if anchor == nil {
			return 0
		}
		return anchor.State().Position - 80
	}, 23)
	ev := attack.NewEavesdrop(radio)
	if err := ev.Start(); err != nil {
		log.Fatal(err)
	}

	truth := make(map[uint32]int)
	rotations := 0
	var beaconers []*privacy.Beaconer
	for i := 0; i < vehicles; i++ {
		v := vehicle.New(vehicle.ID(10+i), vehicle.State{Position: 1000 + float64(i)*2, Speed: 25})
		if anchor == nil {
			anchor = v
		}
		k.Every(0, 10*sim.Millisecond, "phys", func() { v.Dyn.Step(0.01) })
		ps := make([]uint32, 12)
		for j := range ps {
			ps[j] = uint32(100*(i+1)) + uint32(j)
		}
		for _, p := range ps {
			truth[p] = i + 1
		}
		b, err := privacy.NewBeaconer(k, bus, v, mac.NodeID(10+i), ps)
		if err != nil {
			log.Fatal(err)
		}
		b.RotateEvery = rotate
		b.SilentGap = silent
		if err := b.Start(); err != nil {
			log.Fatal(err)
		}
		beaconers = append(beaconers, b)
	}
	if err := k.Run(55 * sim.Second); err != nil {
		log.Fatal(err)
	}
	for _, b := range beaconers {
		rotations += int(b.Rotations)
	}
	trs := ev.Tracks()
	chains := privacy.NewLinker().Link(trs)
	return len(trs), privacy.Linkability(chains, truth, rotations)
}

func main() {
	fmt.Println("=== pseudonym rotation vs a track-linking eavesdropper ===")
	fmt.Printf("%-40s %-8s %s\n", "configuration", "tracks", "linkability")
	for _, c := range []struct {
		name           string
		vehicles       int
		rotate, silent sim.Time
	}{
		{"lone truck, no rotation", 1, 0, 0},
		{"lone truck, rotate 10 s", 1, 10 * sim.Second, 0},
		{"3 abreast, rotate 10 s + 2 s mix", 3, 10 * sim.Second, 2 * sim.Second},
	} {
		tracks, link := run(c.vehicles, c.rotate, c.silent)
		fmt.Printf("%-40s %-8d %.2f\n", c.name, tracks, link)
	}
	fmt.Println("\nPaper (§VI-B2): privacy in platoons is an open challenge; the related")
	fmt.Println("work cites pseudonymous authentication [25] and cooperative pseudonym")
	fmt.Println("change [27]. Measured: a lone vehicle rotating pseudonyms stays fully")
	fmt.Println("linkable by position extrapolation — unlinkability needs traffic density")
	fmt.Println("plus the silent mix window, not rotation alone.")
}
