// Hybrid-communication demo (§V-B, §VI-A4): sweep jammer power against
// an RF-only platoon and against one running the SP-VLC optical side
// channel. RF-only platoons disband once the jammer overwhelms the
// carrier-sense budget; the hybrid platoon keeps its leader state fresh
// over light and never disbands.
package main

import (
	"fmt"
	"log"

	"platoonsec"
)

func run(power float64, hybrid bool) *platoonsec.Result {
	opts := platoonsec.DefaultOptions()
	opts.Seed = 3
	opts.Duration = 45 * platoonsec.Second
	opts.Vehicles = 6
	opts.AttackKey = "jamming"
	opts.JammerPowerDBm = power
	opts.Defense = platoonsec.DefensePack{Hybrid: hybrid}
	res, err := platoonsec.Run(opts)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("=== jammer power sweep: RF-only vs SP-VLC hybrid ===")
	fmt.Printf("%-12s %-26s %-26s\n", "jammer dBm", "RF-only disbanded", "SP-VLC disbanded")
	for _, p := range []float64{10, 20, 30, 40, 50} {
		rf := run(p, false)
		vlc := run(p, true)
		fmt.Printf("%-12.0f %-26s %-26s\n", p,
			fmt.Sprintf("%5.1f%%  (spacing %.1fm)", rf.DisbandedFrac*100, rf.MaxSpacingErr),
			fmt.Sprintf("%5.1f%%  (spacing %.1fm)", vlc.DisbandedFrac*100, vlc.MaxSpacingErr))
	}
	fmt.Println("\nPaper (§VI-A4): \"Suppose jamming of the wireless communication on")
	fmt.Println("802.11p occurs. In that case, it will switch to using visible light only")
	fmt.Println("until a secure connection can be re-established.\" The crossover where")
	fmt.Println("RF-only platoons start disbanding while hybrid ones hold is the result.")
}
