// Secure-join demo (§V-A2, §V-D): a Sybil attacker floods a platoon
// with ghost vehicles until the roster is full and a genuine truck is
// refused admission. With the keys defense the ghosts cannot sign their
// join requests and the genuine joiner gets in; with control-algorithm
// defenses (VPD-ADA + trust) the ghosts are admitted but detected and
// blacklisted.
package main

import (
	"fmt"
	"log"

	"platoonsec"
)

func run(defense platoonsec.DefensePack) *platoonsec.Result {
	opts := platoonsec.DefaultOptions()
	opts.Seed = 11
	opts.Duration = 60 * platoonsec.Second
	opts.Vehicles = 6
	opts.AttackKey = "sybil"
	opts.WithJoiner = true
	opts.JoinerAt = opts.AttackStart + 15*platoonsec.Second
	opts.Cfg.MaxMembers = 10 // 5 genuine members + 5 ghosts = full
	opts.Defense = defense
	res, err := platoonsec.Run(opts)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	report := func(label string, r *platoonsec.Result) {
		fmt.Printf("%-30s ghosts=%d joinerAdmitted=%v detectionCoverage=%.2f blacklisted=%v\n",
			label, r.GhostMembers, r.JoinerAdmitted, r.DetectionCoverage, r.Blacklisted)
	}

	fmt.Println("=== Sybil ghosts vs a genuine joiner ===")
	report("open platoon:", run(platoonsec.DefensePack{}))

	keys, err := platoonsec.PackForMechanism("keys")
	if err != nil {
		log.Fatal(err)
	}
	report("keys (signed joins):", run(keys))

	ctrl, err := platoonsec.PackForMechanism("control-algorithms")
	if err != nil {
		log.Fatal(err)
	}
	report("control algorithms:", run(ctrl))

	fmt.Println("\nPaper: ghosts \"prevent members from joining\" (Table II); private keys")
	fmt.Println("\"successfully prevent … Sybil\" (§VI-A1); control algorithms \"can only")
	fmt.Println("reduce the impact\" (§VI-A3) — here: ghosts admitted but detected.")
}
