// Bench harness regenerating the paper's evaluation artefacts (see
// DESIGN.md §3 for the experiment index):
//
//	E1 BenchmarkTableI             Table I   survey registry render
//	E2 BenchmarkTableII/*          Table II  one sub-bench per attack row
//	E3 BenchmarkTableIII/*         Table III one sub-bench per claimed cell
//	E4 BenchmarkReplayOscillation  §V-A1 oscillation claim
//	E5 BenchmarkJammingSweep       §V-B power sweep, PDR/disband shape
//	E6 BenchmarkFadingKeyAgreement §VI-A1 key agreement vs noise
//	E7 BenchmarkHybridUnderJamming §VI-A4 SP-VLC survival
//	E8 BenchmarkVPDADA             §VI-A3 combined-VPD detection
//	E9 BenchmarkRiskMatrix         §VI-B4 risk assessment
//
// Benches report the *measured observables* through b.ReportMetric, so
// `go test -bench .` prints the numbers EXPERIMENTS.md records. Shapes,
// not absolute values, are the reproduction target.
package platoonsec_test

import (
	"fmt"
	"testing"

	"platoonsec"
	"platoonsec/internal/attack"
	"platoonsec/internal/lab"
	"platoonsec/internal/mac"
	"platoonsec/internal/phy"
	"platoonsec/internal/privacy"
	"platoonsec/internal/risk"
	"platoonsec/internal/security"
	"platoonsec/internal/sim"
	"platoonsec/internal/taxonomy"
	"platoonsec/internal/vehicle"
)

// benchCfg sizes the scenario experiments: the DESIGN.md E2 shell.
func benchCfg() lab.Config {
	return lab.Config{Seed: 1, Duration: 60 * sim.Second, Vehicles: 8}
}

func benchOpts(attack string, defense platoonsec.DefensePack) platoonsec.Options {
	o := platoonsec.DefaultOptions()
	o.Duration = 60 * platoonsec.Second
	o.Vehicles = 8
	o.AttackKey = attack
	o.Defense = defense
	return o
}

func mustRun(b *testing.B, o platoonsec.Options) *platoonsec.Result {
	b.Helper()
	r, err := platoonsec.Run(o)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkTableI regenerates the related-surveys table (E1).
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := taxonomy.RenderTableI()
		if len(out) < 500 {
			b.Fatal("table render truncated")
		}
	}
	b.ReportMetric(float64(len(taxonomy.Surveys())), "surveys")
}

// BenchmarkTableII regenerates every attack row of Table II (E2): run
// the attack against an undefended platoon and report the property the
// paper says it compromises.
func BenchmarkTableII(b *testing.B) {
	base := mustRun(b, benchOpts("", platoonsec.DefensePack{}))
	for _, a := range taxonomy.Attacks() {
		a := a
		b.Run(a.Key, func(b *testing.B) {
			var r *platoonsec.Result
			for i := 0; i < b.N; i++ {
				o := benchOpts(a.Key, platoonsec.DefensePack{})
				switch a.Key {
				case "dos", "sybil":
					o.WithJoiner = true
					o.JoinerAt = o.AttackStart + 15*platoonsec.Second
					if a.Key == "sybil" {
						o.Cfg.MaxMembers = o.Vehicles - 1 + 5
					}
				}
				r = mustRun(b, o)
			}
			b.ReportMetric(r.MaxSpacingErr, "spacing_m")
			b.ReportMetric(r.DisbandedFrac*100, "disband_%")
			b.ReportMetric(float64(r.GhostMembers), "ghosts")
			b.ReportMetric(float64(r.VictimsEjected), "ejected")
			b.ReportMetric(r.EavesdropYield, "eaves_yield")
			b.ReportMetric(r.MaxSpacingErr/maxf(base.MaxSpacingErr, 1e-9), "impact_x")
		})
	}
}

// BenchmarkTableIII regenerates every claimed mechanism × attack cell
// of Table III (E3), reporting 1/0 mitigation verdicts.
func BenchmarkTableIII(b *testing.B) {
	cfg := benchCfg()
	for _, m := range taxonomy.Mechanisms() {
		for _, attackKey := range m.Mitigates {
			m, attackKey := m, attackKey
			b.Run(m.Key+"/"+attackKey, func(b *testing.B) {
				var cell *lab.Cell
				for i := 0; i < b.N; i++ {
					var err error
					cell, err = lab.MeasureCell(cfg, attackKey, m.Key)
					if err != nil {
						b.Fatal(err)
					}
				}
				mit := 0.0
				if cell.Mitigated {
					mit = 1.0
				}
				b.ReportMetric(mit, "mitigated")
				b.ReportMetric(cell.Defended.MaxSpacingErr, "def_spacing_m")
				b.ReportMetric(cell.Undefended.MaxSpacingErr, "undef_spacing_m")
			})
		}
	}
}

// BenchmarkReplayOscillation measures the §V-A1 claim (E4): replay
// makes the platoon oscillate; keys+timestamps stop it.
func BenchmarkReplayOscillation(b *testing.B) {
	var base, open, keys *platoonsec.Result
	pack, err := platoonsec.PackForMechanism("keys")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		base = mustRun(b, benchOpts("", platoonsec.DefensePack{}))
		open = mustRun(b, benchOpts("replay", platoonsec.DefensePack{}))
		keys = mustRun(b, benchOpts("replay", pack))
	}
	b.ReportMetric(open.MaxSpacingErr/maxf(base.MaxSpacingErr, 1e-9), "oscillation_x")
	b.ReportMetric(keys.MaxSpacingErr/maxf(base.MaxSpacingErr, 1e-9), "defended_x")
}

// BenchmarkJammingSweep sweeps jammer power (E5): disband fraction and
// MAC starvation versus power, the paper's "impossible to maintain
// communications" claim as a dose-response curve.
func BenchmarkJammingSweep(b *testing.B) {
	for _, power := range []float64{10, 20, 30, 40, 50} {
		power := power
		b.Run(fmt.Sprintf("power=%.0fdBm", power), func(b *testing.B) {
			var r *platoonsec.Result
			for i := 0; i < b.N; i++ {
				o := benchOpts("jamming", platoonsec.DefensePack{})
				o.JammerPowerDBm = power
				r = mustRun(b, o)
			}
			b.ReportMetric(r.DisbandedFrac*100, "disband_%")
			b.ReportMetric(float64(r.MACStuckDrops), "stuck_drops")
			b.ReportMetric(r.MaxSpacingErr, "spacing_m")
		})
	}
}

// BenchmarkFadingKeyAgreement sweeps measurement noise in the
// fading-channel key agreement of [5] (E6): legitimate agreement
// degrades gracefully, the eavesdropper stays at a coin flip.
func BenchmarkFadingKeyAgreement(b *testing.B) {
	for _, noise := range []float64{0.25, 0.5, 1, 2, 4} {
		noise := noise
		b.Run(fmt.Sprintf("noise=%.2f", noise), func(b *testing.B) {
			f := security.FadingKeyAgreement{
				Rounds: 4096, ChannelSigma: 4, NoiseSigma: noise, GuardBand: 0.5,
			}
			var res security.AgreementResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = f.Run(sim.NewStream(int64(i)+1, "bench-fading"))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.MatchAB, "match_ab")
			b.ReportMetric(res.MatchAE, "match_eve")
			b.ReportMetric(res.KeyRate, "key_rate")
		})
	}
}

// BenchmarkHybridUnderJamming is the §VI-A4 second-channel experiment
// (E7): RF-only vs the SP-VLC optical chain vs the C-V2X sidelink the
// paper names as the alternative.
func BenchmarkHybridUnderJamming(b *testing.B) {
	cases := []struct {
		name string
		pack platoonsec.DefensePack
	}{
		{"rf-only", platoonsec.DefensePack{}},
		{"sp-vlc", platoonsec.DefensePack{Hybrid: true}},
		{"cv2x", platoonsec.DefensePack{CV2X: true}},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var r *platoonsec.Result
			for i := 0; i < b.N; i++ {
				r = mustRun(b, benchOpts("jamming", tc.pack))
			}
			b.ReportMetric(r.DisbandedFrac*100, "disband_%")
			b.ReportMetric(r.MaxSpacingErr, "spacing_m")
		})
	}
}

// BenchmarkVPDADA runs the combined VPD attack against the
// control-algorithm defense stack (E8) and reports detector quality.
func BenchmarkVPDADA(b *testing.B) {
	pack, err := platoonsec.PackForMechanism("control-algorithms")
	if err != nil {
		b.Fatal(err)
	}
	for _, attackKey := range []string{"sensor-spoofing", "malware", "sybil"} {
		attackKey := attackKey
		b.Run(attackKey, func(b *testing.B) {
			var r *platoonsec.Result
			for i := 0; i < b.N; i++ {
				o := benchOpts(attackKey, pack)
				if attackKey == "sybil" {
					o.WithJoiner = true
					o.JoinerAt = o.AttackStart + 15*platoonsec.Second
					o.Cfg.MaxMembers = o.Vehicles - 1 + 5
				}
				r = mustRun(b, o)
			}
			b.ReportMetric(r.DetectionCoverage, "coverage")
			b.ReportMetric(r.DetectionPrecision, "precision")
			b.ReportMetric(r.MaxSpacingErr, "spacing_m")
		})
	}
}

// BenchmarkRiskMatrix builds the §VI-B4 risk matrix from measured
// Table II evidence (E9).
func BenchmarkRiskMatrix(b *testing.B) {
	outcomes, err := lab.MeasureTableII(benchCfg())
	if err != nil {
		b.Fatal(err)
	}
	ev := lab.RiskEvidence(outcomes)
	b.ResetTimer()
	var matrix []risk.Assessment
	for i := 0; i < b.N; i++ {
		matrix = risk.Matrix(ev)
	}
	b.ReportMetric(float64(matrix[0].Score()), "top_score")
	measured := 0
	for _, a := range matrix {
		if a.Measured {
			measured++
		}
	}
	b.ReportMetric(float64(measured), "measured_rows")
}

// BenchmarkPseudonymPrivacy sweeps the pseudonym rotation period (E10,
// §VI-B2 open challenge): tracking-chain span and same-vehicle
// linkability versus rotation cadence, with mix-window silence.
func BenchmarkPseudonymPrivacy(b *testing.B) {
	for _, rotate := range []sim.Time{0, 20 * sim.Second, 10 * sim.Second, 5 * sim.Second} {
		rotate := rotate
		name := "never"
		if rotate > 0 {
			name = rotate.String()
		}
		b.Run("rotate="+name, func(b *testing.B) {
			var tracks, rotations int
			var linkability float64
			for i := 0; i < b.N; i++ {
				k := sim.NewKernel(int64(i) + 1)
				env := phy.DefaultEnvironment()
				env.RayleighFading = false
				env.ShadowSigmaDB = 0
				bus := mac.NewBus(k, phy.NewChannel(env, k.Stream("phy")), mac.DefaultConfig())
				var anchor *vehicle.Vehicle
				radio := attack.NewRadio(k, bus, 900, func() float64 {
					if anchor == nil {
						return 0
					}
					return anchor.State().Position - 80
				}, 23)
				ev := attack.NewEavesdrop(radio)
				if err := ev.Start(); err != nil {
					b.Fatal(err)
				}
				truth := make(map[uint32]int)
				totalRot := 0
				for v := 0; v < 3; v++ {
					veh := vehicle.New(vehicle.ID(10+v), vehicle.State{Position: 1000 + float64(v)*2, Speed: 25})
					if anchor == nil {
						anchor = veh
					}
					k.Every(0, 10*sim.Millisecond, "phys", func() { veh.Dyn.Step(0.01) })
					ps := make([]uint32, 12)
					for j := range ps {
						ps[j] = uint32(100*(v+1)) + uint32(j)
					}
					for _, p := range ps {
						truth[p] = v + 1
					}
					bc, err := privacy.NewBeaconer(k, bus, veh, mac.NodeID(10+v), ps)
					if err != nil {
						b.Fatal(err)
					}
					bc.RotateEvery = rotate
					bc.SilentGap = 2 * sim.Second
					if err := bc.Start(); err != nil {
						b.Fatal(err)
					}
					defer func() { totalRot += int(bc.Rotations) }()
				}
				if err := k.Run(55 * sim.Second); err != nil {
					b.Fatal(err)
				}
				trs := ev.Tracks()
				tracks = len(trs)
				chains := privacy.NewLinker().Link(trs)
				rot := 0
				// Rotations counted post-run via deferred closures is
				// awkward inside the loop; recompute from track count.
				if rotate > 0 {
					rot = tracks - 3
				}
				rotations = rot
				linkability = privacy.Linkability(chains, truth, rot)
			}
			b.ReportMetric(float64(tracks), "tracks")
			b.ReportMetric(float64(rotations), "rotations")
			b.ReportMetric(linkability, "linkability")
		})
	}
}

// BenchmarkReformAfterSplit measures the §V-A3 reconnection cost: a
// single forged split detaches the rear half; auto-rejoin reforms the
// platoon and the bench reports how long that took and the fuel premium
// paid meanwhile.
func BenchmarkReformAfterSplit(b *testing.B) {
	var hit, base *platoonsec.Result
	for i := 0; i < b.N; i++ {
		o := benchOpts("fake-maneuver", platoonsec.DefensePack{})
		o.Duration = 90 * platoonsec.Second
		o.AttackOneShot = true
		o.AutoRejoin = true
		hit = mustRun(b, o)
		ob := benchOpts("", platoonsec.DefensePack{})
		ob.Duration = 90 * platoonsec.Second
		base = mustRun(b, ob)
	}
	b.ReportMetric(hit.ReformSeconds, "reform_s")
	b.ReportMetric(hit.LitresPer100-base.LitresPer100, "fuel_premium_l100")
}

// BenchmarkBeaconRateAblation sweeps the CAM rate (DESIGN.md §4): lower
// rates save airtime but loosen control; the spacing error shows the
// trade-off.
func BenchmarkBeaconRateAblation(b *testing.B) {
	for _, period := range []sim.Time{50 * sim.Millisecond, 100 * sim.Millisecond,
		200 * sim.Millisecond, 400 * sim.Millisecond} {
		period := period
		b.Run(fmt.Sprintf("beacon=%v", period), func(b *testing.B) {
			var r *platoonsec.Result
			for i := 0; i < b.N; i++ {
				o := benchOpts("", platoonsec.DefensePack{})
				o.Cfg.BeaconPeriod = period
				o.Cfg.BeaconStale = 5 * period
				r = mustRun(b, o)
			}
			b.ReportMetric(r.MaxSpacingErr, "spacing_m")
			b.ReportMetric(r.BusyRatio*1000, "busy_permille")
		})
	}
}

// BenchmarkDefenseStackAblation measures each defense layer's overhead
// and residual protection on the baseline (no attack): the cost side of
// Table III.
func BenchmarkDefenseStackAblation(b *testing.B) {
	packs := map[string]platoonsec.DefensePack{
		"none":      {},
		"pki":       {PKI: true},
		"pki+enc":   {PKI: true, Encrypt: true},
		"vpd+trust": {VPDADA: true, Trust: true},
		"full":      platoonsec.AllDefenses(),
	}
	for name, pack := range packs {
		name, pack := name, pack
		b.Run(name, func(b *testing.B) {
			var r *platoonsec.Result
			for i := 0; i < b.N; i++ {
				r = mustRun(b, benchOpts("", pack))
			}
			b.ReportMetric(r.MaxSpacingErr, "spacing_m")
			b.ReportMetric(float64(r.Collisions), "collisions")
		})
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
