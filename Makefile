# Build / test / lint entry points. CI (.github/workflows/ci.yml) runs
# `make ci`; the individual targets are for local use.

GOBIN ?= $(shell go env GOPATH)/bin

.PHONY: all build test race race-engine world-race service-race service-obs-race platoond loadtest bench bench-gate microbench microbench-hot fuzz-smoke fmt-check vet platoonvet vet-taint install-platoonvet fix fix-check lint docs docs-check linkcheck forensics ci

all: build

build:
	go build ./...

test:
	go test ./...

## race runs the full suite under the race detector. The sim kernel is
## single-goroutine by contract, so this mostly guards the run-level
## parallelism in scenario.Sweep and lab.
race:
	go test -race ./...

## race-engine is the scoped race gate for the parallel experiment
## engine and everything rewired on top of it.
race-engine:
	go test -race ./internal/engine/... ./internal/scenario/... ./internal/lab/...

## world-race is the scoped race gate for the sharded world: the
## shard-invariance metamorphic suite under the race detector, which
## exercises the epoch barrier across worker counts including
## GOMAXPROCS.
world-race:
	go test -race ./internal/world/...

## service-race is the scoped race gate for the platoond service stack:
## the digest cache, single-flight dedup, admission control and both
## daemon commands under the race detector.
service-race:
	go test -race ./internal/service/... ./cmd/platoond ./cmd/platoonload

## service-obs-race is the scoped race gate for the observability
## surfaces: the timeline ring's snapshot-while-record concurrency and
## the service's opportunistic sampler, trace store and SLO endpoints
## under the race detector.
service-obs-race:
	go test -race ./internal/obs/... ./internal/service/...

## platoond starts the simulation service on localhost:8099 with disk
## spill under /tmp — the quickstart deployment from README.md.
platoond:
	go run ./cmd/platoond -addr 127.0.0.1:8099 -spill /tmp/platoond-spill

## loadtest drives the self-hosted load generator: 2000 requests over
## 20 distinct scenarios, verifying every served body is byte-identical
## to a direct scenario.Run, and writes the measured report (hit rate,
## latency percentiles) to LOADTEST.json — the numbers quoted in
## EXPERIMENTS.md E19.
loadtest:
	go run ./cmd/platoonload -verify -json LOADTEST.json

## bench runs the cmd/bench harness over the E2/E3/E5 workloads and
## records the perf baseline (runs/sec, ns/run, allocs/run) that every
## future PR is compared against.
bench:
	go run ./cmd/bench -o BENCH_baseline.json

## bench-gate re-measures the same workloads against the committed
## BENCH_pr9.json and fails when any workload's allocs/run
## regressed more than TOLERANCE percent, or its ns/run more than
## LAT_TOLERANCE percent on both the mean and the median (allocation
## counts are deterministic; wall clock on shared runners is not). The
## fresh measurement is written to BENCH_pr10.json for artifact upload.
## Workloads new since the comparison baseline (E20-timeline) are
## recorded but not gated.
TOLERANCE ?= 10
LAT_TOLERANCE ?= 25
bench-gate:
	go run ./cmd/bench -o BENCH_pr10.json -compare BENCH_pr9.json -tolerance $(TOLERANCE) -latency-tolerance $(LAT_TOLERANCE)

## microbench runs the go-test paper-reproduction benchmarks once each
## (shape regeneration, not timing).
microbench:
	go test -bench=. -benchtime=1x -run=^$$ ./...

## microbench-hot times the codec/phy/mac hot-path micro-benchmarks
## with allocation reporting — the quickest view of what the pooled
## envelope, codec scratch, and reused rx-slice rewrites buy.
microbench-hot:
	go test -bench=. -benchmem -run=^$$ ./internal/message ./internal/phy ./internal/mac

## fuzz-smoke runs each message-codec and world-handoff-codec fuzz
## target briefly.
fuzz-smoke:
	go test -run=^$$ -fuzz=FuzzDecodeBeacon -fuzztime=10s ./internal/message
	go test -run=^$$ -fuzz=FuzzDecodeManeuver -fuzztime=10s ./internal/message
	go test -run=^$$ -fuzz=FuzzDecodeMembership -fuzztime=10s ./internal/message
	go test -run=^$$ -fuzz=FuzzDecodeWorldFrame -fuzztime=10s ./internal/world
	go test -run=^$$ -fuzz=FuzzDecodeWorldMigration -fuzztime=10s ./internal/world

## docs regenerates every generated document in one step: the rendered
## paper tables (docs_tables_output.txt) and the attack/defense
## reference under docs/. Both are committed; CI fails if they drift
## (see docs-check).
docs:
	go test ./cmd/tables -run TestGoldenTablesOutput -update -count=1
	go run ./cmd/docsgen
	$(MAKE) linkcheck

## docs-check is the CI freshness gate: regenerate and fail on any
## diff, so a PR that changes measured numbers must also commit the
## regenerated docs.
docs-check: docs
	git diff --exit-code docs docs_tables_output.txt

## linkcheck verifies every relative markdown link in the hand-written
## and generated docs resolves to a real file.
linkcheck:
	go run ./cmd/docsgen -check-links README.md DESIGN.md EXPERIMENTS.md docs

## forensics sweeps the attack × defense grid with causal span tracing
## on and writes every cell's attack→effect attribution report (the
## provenance chains from injected frame to measured platoon effect).
## The JSON is byte-identical at any worker count; CI uploads it as an
## artifact next to the perf baseline.
forensics:
	go run ./cmd/attacklab -quick -forensics forensics.json

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	go vet ./...

## platoonvet runs the determinism lint suite standalone (no install
## needed).
platoonvet:
	go run ./cmd/platoonvet ./...

## vet-taint runs just the adversarial data-flow pair — the taint
## source→sink tracker and the verify-before-decode gate — for a quick
## trust-boundary check while iterating on ingest or defense code.
vet-taint:
	go run ./cmd/platoonvet -only taint,authgate ./...

## install-platoonvet builds the vet tool into GOBIN for use as
## `go vet -vettool=$(GOBIN)/platoonvet ./...`.
install-platoonvet:
	go build -o $(GOBIN)/platoonvet ./cmd/platoonvet

## fix applies every suggested fix in place (sorted-keys rewrites for
## hazardous map ranges, stream-parameter rewrites for global rand).
fix:
	go run ./cmd/platoonvet -fix ./...

## fix-check previews suggested fixes as a unified diff and fails if
## any file would change; CI runs this so fixable findings can't land.
fix-check:
	go run ./cmd/platoonvet -fix -diff ./...

lint: fmt-check vet platoonvet fix-check

ci: build lint race
