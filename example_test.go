package platoonsec_test

import (
	"fmt"

	"platoonsec"
)

// Example runs a healthy platoon and reports whether it held formation.
func Example() {
	opts := platoonsec.DefaultOptions()
	opts.Duration = 20 * platoonsec.Second
	opts.Vehicles = 4

	res, err := platoonsec.Run(opts)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("collisions: %d\n", res.Collisions)
	fmt.Printf("platoon held: %v\n", res.MaxSpacingErr < 2.5 && res.DisbandedFrac == 0)
	// Output:
	// collisions: 0
	// platoon held: true
}

// ExampleRun_jamming injects a jammer and defends with the SP-VLC
// hybrid channel.
func ExampleRun_jamming() {
	opts := platoonsec.DefaultOptions()
	opts.Duration = 30 * platoonsec.Second
	opts.Vehicles = 4
	opts.AttackKey = "jamming"
	opts.Defense = platoonsec.DefensePack{Hybrid: true}

	res, err := platoonsec.Run(opts)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("disbanded under jamming with SP-VLC: %v\n", res.DisbandedFrac > 0.02)
	// Output:
	// disbanded under jamming with SP-VLC: false
}

// ExamplePackForMechanism maps the paper's Table III mechanisms onto
// defense configurations.
func ExamplePackForMechanism() {
	pack, err := platoonsec.PackForMechanism("keys")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("keys ⇒ signatures: %v, encryption: %v\n", pack.PKI, pack.Encrypt)
	// Output:
	// keys ⇒ signatures: true, encryption: true
}

// ExampleRiskMatrix scores the attack taxonomy with measured evidence.
func ExampleRiskMatrix() {
	matrix := platoonsec.RiskMatrix(map[string]*platoonsec.RiskEvidence{
		"jamming": {DisbandedFrac: 0.8},
	})
	top := matrix[0]
	fmt.Printf("top risk: %s (%s)\n", top.Attack.Key, top.Level())
	// Output:
	// top risk: jamming (CRITICAL)
}
