package platoonsec_test

import (
	"context"
	"fmt"

	"platoonsec"
)

// Example runs a healthy platoon and reports whether it held formation.
func Example() {
	opts := platoonsec.DefaultOptions()
	opts.Duration = 20 * platoonsec.Second
	opts.Vehicles = 4

	res, err := platoonsec.Run(opts)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("collisions: %d\n", res.Collisions)
	fmt.Printf("platoon held: %v\n", res.MaxSpacingErr < 2.5 && res.DisbandedFrac == 0)
	// Output:
	// collisions: 0
	// platoon held: true
}

// ExampleRun_jamming injects a jammer and defends with the SP-VLC
// hybrid channel.
func ExampleRun_jamming() {
	opts := platoonsec.DefaultOptions()
	opts.Duration = 30 * platoonsec.Second
	opts.Vehicles = 4
	opts.AttackKey = "jamming"
	opts.Defense = platoonsec.DefensePack{Hybrid: true}

	res, err := platoonsec.Run(opts)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("disbanded under jamming with SP-VLC: %v\n", res.DisbandedFrac > 0.02)
	// Output:
	// disbanded under jamming with SP-VLC: false
}

// ExampleSweep fans the same jamming experiment out across seeds; the
// kernel stays single-goroutine per run, so parallelism never changes
// any result.
func ExampleSweep() {
	base := platoonsec.DefaultOptions()
	base.Duration = 20 * platoonsec.Second
	base.Vehicles = 4
	base.AttackKey = "jamming"
	opts := []platoonsec.Options{base, base, base}
	for i := range opts {
		opts[i].Seed = int64(i + 1)
	}

	results, err := platoonsec.Sweep(opts, 2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	disbanded := 0
	for _, r := range results {
		if r.DisbandedFrac > 0.3 {
			disbanded++
		}
	}
	fmt.Printf("runs: %d\n", len(results))
	fmt.Printf("disbanded under jamming in every seed: %v\n", disbanded == len(results))
	// Output:
	// runs: 3
	// disbanded under jamming in every seed: true
}

// ExampleSweepWithReport attaches the flight recorder to a sweep and
// reads the observability snapshot back from the report: per-run in
// Result.Obs, summed across runs in Telemetry.Counters.
func ExampleSweepWithReport() {
	o := platoonsec.DefaultOptions()
	o.Duration = 20 * platoonsec.Second
	o.Vehicles = 4
	o.AttackKey = "jamming"
	o.Observe = true

	rep := platoonsec.SweepWithReport(context.Background(),
		[]platoonsec.Options{o}, platoonsec.SweepConfig{Workers: 2})
	if rep.Err != nil {
		fmt.Println("error:", rep.Err)
		return
	}
	snap := rep.Results[0].Obs
	fmt.Printf("flight recorder captured records: %v\n", snap.Records > 0)
	fmt.Printf("transmissions counted: %v\n", snap.Counters["mac.tx"] > 0)
	fmt.Printf("report aggregates the run's counters: %v\n",
		rep.Telemetry.Counters["mac.tx"] == snap.Counters["mac.tx"])
	// Output:
	// flight recorder captured records: true
	// transmissions counted: true
	// report aggregates the run's counters: true
}

// ExamplePackForMechanism maps the paper's Table III mechanisms onto
// defense configurations.
func ExamplePackForMechanism() {
	pack, err := platoonsec.PackForMechanism("keys")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("keys ⇒ signatures: %v, encryption: %v\n", pack.PKI, pack.Encrypt)
	// Output:
	// keys ⇒ signatures: true, encryption: true
}

// ExampleRiskMatrix scores the attack taxonomy with measured evidence.
func ExampleRiskMatrix() {
	matrix := platoonsec.RiskMatrix(map[string]*platoonsec.RiskEvidence{
		"jamming": {DisbandedFrac: 0.8},
	})
	top := matrix[0]
	fmt.Printf("top risk: %s (%s)\n", top.Attack.Key, top.Level())
	// Output:
	// top risk: jamming (CRITICAL)
}
